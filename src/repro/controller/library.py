"""Alternative controller profiles.

The paper stresses that "other implementations can be analyzed simply by
populating these two tables appropriately".  These profiles exercise that
claim: they are *illustrative* models of other controller families (not
transcriptions of their exact process inventories) used by the examples and
tests to show that the framework is implementation-agnostic.
"""

from __future__ import annotations

from repro.controller.process import ProcessSpec, RestartMode, nodemgr, supervisor
from repro.controller.role import RoleKind, RoleSpec
from repro.controller.spec import ControllerSpec

_AUTO = RestartMode.AUTO
_MANUAL = RestartMode.MANUAL


def flat_consensus_controller(cluster_size: int = 3) -> ControllerSpec:
    """An ONOS/ODL-style controller: one homogeneous role, consensus store.

    A single "Controller" role hosts the northbound API, the flow service,
    and an embedded strongly-consistent store (Atomix/RAFT-like), so the
    store processes need a majority quorum while the stateless services need
    one instance.  The forwarding element is an Open vSwitch-like agent.
    """
    majority = cluster_size // 2 + 1
    controller = RoleSpec(
        "Controller",
        (
            ProcessSpec("northbound-api", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("flow-service", _AUTO, cp_quorum=1, dp_quorum=1),
            ProcessSpec("topology-service", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("consensus-store", _MANUAL, cp_quorum=majority, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )
    switch = RoleSpec(
        "vSwitch",
        (
            ProcessSpec("ovs-vswitchd", _AUTO, cp_quorum=0, dp_quorum=1),
            ProcessSpec("ovsdb-server", _AUTO, cp_quorum=0, dp_quorum=1),
            supervisor(),
        ),
        kind=RoleKind.HOST,
    )
    return ControllerSpec(
        "Flat consensus controller", (controller, switch), cluster_size=cluster_size
    )


def split_state_controller(cluster_size: int = 3) -> ControllerSpec:
    """A controller with separated state and logic tiers, no host agent.

    Models designs where the forwarding plane lives in hardware switches
    (pure OpenFlow): there is no per-host role, so the host data plane is
    governed entirely by the shared (controller-side) contribution.
    """
    majority = cluster_size // 2 + 1
    logic = RoleSpec(
        "Logic",
        (
            ProcessSpec("api-gateway", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("path-computation", _AUTO, cp_quorum=1, dp_quorum=1),
            ProcessSpec("telemetry", _AUTO, cp_quorum=1, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )
    state = RoleSpec(
        "State",
        (
            ProcessSpec("kv-store", _MANUAL, cp_quorum=majority, dp_quorum=0),
            ProcessSpec("coordination", _MANUAL, cp_quorum=majority, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )
    return ControllerSpec(
        "Split state controller", (logic, state), cluster_size=cluster_size
    )


def kubernetes_style_controller(cluster_size: int = 3) -> ControllerSpec:
    """A Kubernetes-control-plane-shaped profile.

    Maps the framework onto the most familiar distributed control plane:
    etcd is the majority-quorum store; the API server is 1-of-n; the
    controller-manager and scheduler are leader-elected (1-of-n); the
    per-host role is the kubelet + kube-proxy pair, both required for the
    node's workload "data plane".  systemd supervision restarts everything
    automatically except etcd, which operators commonly restore by hand
    after data-directory issues.
    """
    majority = cluster_size // 2 + 1
    control_plane = RoleSpec(
        "ControlPlane",
        (
            ProcessSpec("kube-apiserver", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec(
                "controller-manager", _AUTO, cp_quorum=1, dp_quorum=0
            ),
            ProcessSpec("scheduler", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("etcd", _MANUAL, cp_quorum=majority, dp_quorum=0),
            supervisor(),
            nodemgr(),
        ),
    )
    node = RoleSpec(
        "Node",
        (
            ProcessSpec("kubelet", _AUTO, cp_quorum=0, dp_quorum=1),
            ProcessSpec("kube-proxy", _AUTO, cp_quorum=0, dp_quorum=1),
            supervisor(),
        ),
        kind=RoleKind.HOST,
    )
    return ControllerSpec(
        "Kubernetes-style controller",
        (control_plane, node),
        cluster_size=cluster_size,
    )


def hardened_opencontrail(cluster_size: int = 3) -> ControllerSpec:
    """OpenContrail with the paper's recommended automation applied.

    The conclusion calls for "automation to reduce downtime": this profile
    flips every manual-restart process (redis, the four Database
    processes) to supervisor/orchestrator auto-restart — the what-if
    controller the recommendations would produce.  Comparing it against
    :func:`repro.controller.opencontrail.opencontrail_3x` quantifies the
    recommendation's payoff.
    """
    from repro.controller.opencontrail import opencontrail_3x

    base = opencontrail_3x(cluster_size=cluster_size)
    roles = []
    for role in base.roles:
        processes = tuple(
            ProcessSpec(
                p.name,
                _AUTO if p.kind.value == "regular" else p.restart,
                cp_quorum=p.cp_quorum,
                dp_quorum=p.dp_quorum,
                dp_group=p.dp_group,
                kind=p.kind,
            )
            for p in role.processes
        )
        roles.append(RoleSpec(role.name, processes, kind=role.kind))
    return ControllerSpec(
        "OpenContrail 3.x (hardened)", tuple(roles), cluster_size=cluster_size
    )


def toy_controller() -> ControllerSpec:
    """A minimal two-process controller used in tests and docstrings."""
    role = RoleSpec(
        "Core",
        (
            ProcessSpec("api", _AUTO, cp_quorum=1, dp_quorum=0),
            ProcessSpec("store", _MANUAL, cp_quorum=2, dp_quorum=0),
        ),
    )
    return ControllerSpec("Toy controller", (role,), cluster_size=3)
