"""Tests for role specifications and quorum units (repro.controller.role)."""

import pytest

from repro.controller.process import ProcessSpec, RestartMode, supervisor
from repro.controller.role import RoleKind, RoleSpec
from repro.errors import SpecError

AUTO = RestartMode.AUTO
MANUAL = RestartMode.MANUAL


def control_like():
    return RoleSpec(
        "Control",
        (
            ProcessSpec("control", AUTO, cp_quorum=1, dp_quorum=1, dp_group="g"),
            ProcessSpec("dns", AUTO, cp_quorum=0, dp_quorum=1, dp_group="g"),
            ProcessSpec("named", AUTO, cp_quorum=0, dp_quorum=1, dp_group="g"),
            supervisor(),
        ),
    )


class TestRoleSpec:
    def test_duplicate_process_names_rejected(self):
        with pytest.raises(SpecError):
            RoleSpec(
                "R",
                (ProcessSpec("x", AUTO), ProcessSpec("x", MANUAL)),
            )

    def test_multiple_supervisors_rejected(self):
        with pytest.raises(SpecError):
            RoleSpec("R", (supervisor(), supervisor()))

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError):
            RoleSpec("", (ProcessSpec("x", AUTO),))

    def test_mixed_group_quorums_rejected(self):
        with pytest.raises(SpecError):
            RoleSpec(
                "R",
                (
                    ProcessSpec("a", AUTO, dp_quorum=1, dp_group="g"),
                    ProcessSpec("b", AUTO, dp_quorum=2, dp_group="g"),
                ),
            )

    def test_supervisor_lookup(self):
        assert control_like().supervisor is not None
        role = RoleSpec("R", (ProcessSpec("x", AUTO),))
        assert role.supervisor is None

    def test_regular_processes_excludes_supervisor(self):
        names = [p.name for p in control_like().regular_processes]
        assert "supervisor" not in names
        assert names == ["control", "dns", "named"]

    def test_process_lookup(self):
        assert control_like().process("dns").name == "dns"
        with pytest.raises(SpecError):
            control_like().process("ghost")


class TestQuorumUnits:
    def test_dp_group_merges_into_one_unit(self):
        units = control_like().quorum_units("dp")
        assert len(units) == 1
        unit = units[0]
        assert unit.label == "{control+dns+named}"
        assert unit.quorum == 1
        assert len(unit.members) == 3

    def test_group_alpha_is_product(self):
        # The Table III footnote: the block is "a single process with
        # availability A^3".
        unit = control_like().quorum_units("dp")[0]
        a = 0.99998
        alpha = unit.alpha({AUTO: a, MANUAL: 0.9998})
        assert alpha == pytest.approx(a**3)

    def test_cp_units_ignore_dp_groups(self):
        units = control_like().quorum_units("cp")
        assert [u.label for u in units] == ["control"]

    def test_zero_quorum_processes_excluded(self):
        role = RoleSpec(
            "R",
            (
                ProcessSpec("needed", AUTO, cp_quorum=1),
                ProcessSpec("optional", AUTO, cp_quorum=0),
            ),
        )
        assert [u.label for u in role.quorum_units("cp")] == ["needed"]

    def test_bad_plane_rejected(self):
        with pytest.raises(SpecError):
            control_like().quorum_units("forwarding")


class TestDerivedCounts:
    def test_quorum_counts(self):
        # Control: CP (M=0, N=1); DP (M=0, N=1 — the merged block).
        role = control_like()
        assert role.quorum_counts("cp") == (0, 1)
        assert role.quorum_counts("dp") == (0, 1)

    def test_restart_counts(self):
        role = RoleSpec(
            "Analytics",
            (
                ProcessSpec("api", AUTO, cp_quorum=1),
                ProcessSpec("redis", MANUAL, cp_quorum=1),
                supervisor(),
            ),
        )
        assert role.restart_counts() == (1, 1)

    def test_host_role_kind(self):
        role = RoleSpec(
            "vRouter", (ProcessSpec("agent", AUTO, dp_quorum=1),),
            kind=RoleKind.HOST,
        )
        assert role.kind is RoleKind.HOST
