"""A2 — ablation: 2N+1 cluster generalization (N = 1, 2, 3).

Section II: "Each of these four components is clustered in a 2N+1 fashion
... We assume that N=1 ... Generalization to N>1 is straightforward."
This bench performs that generalization: 3-, 5-, and 7-node clusters on
correspondingly scaled Large topologies, with majority quorums.
"""


from repro.controller.opencontrail import opencontrail_3x
from repro.models.sw import cp_availability
from repro.params.software import RestartScenario
from repro.reporting.tables import format_table
from repro.units import downtime_minutes_per_year


def cluster_sweep(hardware, software):
    rows = []
    for cluster_size in (3, 5, 7):
        spec_n = opencontrail_3x(cluster_size=cluster_size)
        cp = cp_availability(
            spec_n, "large", hardware, software, RestartScenario.REQUIRED
        )
        rows.append((cluster_size, cp))
    return rows


def test_quorum_ablation(benchmark, hardware, software):
    rows = benchmark(cluster_sweep, hardware, software)
    print(
        "\n"
        + format_table(
            ("Cluster size (2N+1)", "A_CP (2L)", "Downtime m/y"),
            [
                (n, f"{cp:.9f}", f"{downtime_minutes_per_year(cp):.3f}")
                for n, cp in rows
            ],
            title="Ablation A2: quorum generalization, option 2L",
        )
    )
    availabilities = [cp for _, cp in rows]
    # Larger clusters with majority quorums are strictly more available.
    assert availabilities[0] < availabilities[1] < availabilities[2]
    # Already at N=2 the quorum-driven downtime is dominated by other
    # effects: going 3 -> 5 nodes must cut downtime by at least 3x.
    dt3 = downtime_minutes_per_year(availabilities[0])
    dt5 = downtime_minutes_per_year(availabilities[1])
    assert dt3 / dt5 > 3.0
