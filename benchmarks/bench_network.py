"""Network analysis throughput: cut sets, SDP evaluation, placement.

Times (a) full per-switch control-path analyses — structure lowering,
complete minimal cut/path enumeration, and the Shannon-factored exact
evaluator — over the reference ring and fat-tree graphs, (b) an
exhaustive k=2 placement search over seven candidate sites on the backbone
mesh, and (c) the sum-of-disjoint-products stack: factored vs SDP exact
evaluation on the backbone (speedup floor: 10x), SDP-only exact
evaluation on the 66-element two-tier graph where factoring is
infeasible, batched (switch, site-set) sweep throughput, and
local-search vs greedy placement value.  Appends ``network`` and ``sdp``
sections to ``BENCH_perf.json`` (other sections are preserved).
Runnable as a pytest benchmark *or* directly as a script —
``python benchmarks/bench_network.py --repeats 1 --check`` is the CI
smoke invocation.

Acceptance floors are deliberately an order of magnitude below the rates
measured on a development laptop, and are waived entirely on single-core
runners where timing is meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.sdp import sdp_terms
from repro.network import (
    analyze_switch,
    compile_pair_sweep,
    exact_control_path_unavailability,
    optimize_placement,
)
from repro.network.paths import (
    _control_path_sets_cached,
    _exact_unavailability_cached,
    _sdp_expression_cached,
)
from repro.reporting.tables import format_table
from repro.topology.network_reference import (
    backbone_network,
    fat_tree_pod,
    ring_network,
    two_tier_network,
)

BENCH_SEED = 20190324  # shared with bench_perf_engine.py
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

#: Floors ~10x below a development-laptop measurement; see module docstring.
ANALYSIS_FLOOR_PER_S = 0.5
PLACEMENT_FLOOR_EVALS_PER_S = 3.0
#: The tentpole acceptance target: SDP exact evaluation must beat the
#: factored evaluator by at least this factor on the backbone mesh.
SDP_SPEEDUP_FLOOR = 10.0
BATCH_FLOOR_PAIRS_PER_S = 200.0


def _best_of(fn, repeats: int):
    best_time, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def _run_analyses():
    """Full-order analysis of every switch on the ring and fat-tree pod.

    The exact-evaluator memo is cleared first so every repeat pays the
    whole pipeline (prune, enumerate, factor), not a cache lookup.
    """
    _exact_unavailability_cached.cache_clear()
    analyses = []
    for graph in (ring_network(), fat_tree_pod()):
        for switch in graph.switches:
            analyses.append(analyze_switch(graph, switch))
    return analyses


def _run_placement():
    """Exhaustive k=2 search over all 7 backbone attachment points."""
    _exact_unavailability_cached.cache_clear()
    graph = backbone_network()
    candidates = tuple(
        node.name for node in graph.nodes if node.kind in ("site", "router")
    )
    return optimize_placement(
        graph, k=2, candidates=candidates, method="exact"
    )


def _clear_sdp_caches() -> None:
    """Every repeat pays enumeration + disjointing + evaluation, cold."""
    _exact_unavailability_cached.cache_clear()
    _sdp_expression_cached.cache_clear()
    _control_path_sets_cached.cache_clear()
    sdp_terms.cache_clear()


def _run_exact(graph, evaluator: str):
    _clear_sdp_caches()
    return [
        exact_control_path_unavailability(graph, switch, evaluator=evaluator)
        for switch in graph.switches
    ]


def _batch_site_sets(candidates):
    """All 1- and 2-site subsets of the candidate pool, sorted."""
    pool = sorted(candidates)
    singles = [(site,) for site in pool]
    pairs = [
        (a, b) for i, a in enumerate(pool) for b in pool[i + 1:]
    ]
    return singles + pairs


def run_sdp_bench(repeats: int = 3) -> dict:
    """Time the SDP stack and return the BENCH_perf.json ``sdp`` section."""
    backbone = backbone_network()
    factored_s, _ = _best_of(lambda: _run_exact(backbone, "factored"), repeats)
    sdp_s, _ = _best_of(lambda: _run_exact(backbone, "sdp"), repeats)

    two_tier = two_tier_network()
    two_tier_s, _ = _best_of(lambda: _run_exact(two_tier, "sdp"), repeats)

    candidates = tuple(
        node.name
        for node in backbone.nodes
        if node.kind in ("site", "router")
    )
    site_sets = _batch_site_sets(candidates)

    def compile_cold():
        from repro.network.batch import _indicator_path_sets_cached

        _clear_sdp_caches()
        _indicator_path_sets_cached.cache_clear()
        return compile_pair_sweep(backbone, candidates=candidates)

    plan_compile_s, plan = _best_of(compile_cold, repeats)
    batch_eval_s, sweep = _best_of(lambda: plan.evaluate(site_sets), repeats)
    pairs = len(site_sets) * len(plan.switches)

    greedy = optimize_placement(
        backbone, k=2, candidates=candidates, method="greedy"
    )
    local = optimize_placement(
        backbone, k=2, candidates=candidates, method="local"
    )
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "repeats": repeats,
        "graph": backbone.name,
        "switches": len(backbone.switches),
        "factored_s": factored_s,
        "sdp_s": sdp_s,
        "speedup": factored_s / sdp_s,
        "two_tier_graph": two_tier.name,
        "two_tier_elements": (
            len(two_tier.nodes) + len(two_tier.links) + len(two_tier.srgs)
        ),
        "two_tier_sdp_s": two_tier_s,
        "batch_candidates": len(candidates),
        "batch_site_sets": len(site_sets),
        "batch_unique_terms": plan.unique_terms,
        "batch_compile_s": plan_compile_s,
        "batch_eval_s": batch_eval_s,
        "batch_pairs": pairs,
        "batch_pairs_per_second": pairs / batch_eval_s,
        "greedy_availability": greedy.availability,
        "local_availability": local.availability,
        "local_minus_greedy": local.availability - greedy.availability,
        "local_evaluations": local.evaluations,
        "local_restarts": local.restarts,
        "local_seed": local.seed,
    }


def run_network_bench(repeats: int = 3) -> dict:
    """Time both workloads and return the BENCH_perf.json section."""
    analysis_s, analyses = _best_of(_run_analyses, repeats)
    placement_s, placement = _best_of(_run_placement, repeats)
    cut_sets = sum(len(a.cut_sets) for a in analyses)
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "repeats": repeats,
        "analysis_switches": len(analyses),
        "analysis_cut_sets": cut_sets,
        "analysis_s": analysis_s,
        "analyses_per_second": len(analyses) / analysis_s,
        "placement_candidates": len(placement.candidates),
        "placement_evaluations": placement.evaluations,
        "placement_sites": list(placement.sites),
        "placement_s": placement_s,
        "placement_evaluations_per_second": (
            placement.evaluations / placement_s
        ),
    }


def _report(record: dict, sdp_record: dict, out_path: Path) -> None:
    rows = [
        (
            f"analyze {record['analysis_switches']} switches "
            f"({record['analysis_cut_sets']} cut sets)",
            f"{record['analysis_s'] * 1e3:.1f}",
            f"{record['analyses_per_second']:.1f}/s",
        ),
        (
            f"place k=2 over {record['placement_candidates']} candidates",
            f"{record['placement_s'] * 1e3:.1f}",
            f"{record['placement_evaluations_per_second']:.1f} evals/s",
        ),
        (
            f"{sdp_record['graph']} exact, factored evaluator",
            f"{sdp_record['factored_s'] * 1e3:.1f}",
            "baseline",
        ),
        (
            f"{sdp_record['graph']} exact, SDP evaluator",
            f"{sdp_record['sdp_s'] * 1e3:.1f}",
            f"{sdp_record['speedup']:.1f}x faster",
        ),
        (
            f"{sdp_record['two_tier_graph']} exact "
            f"({sdp_record['two_tier_elements']} elements), SDP",
            f"{sdp_record['two_tier_sdp_s'] * 1e3:.1f}",
            "factored infeasible",
        ),
        (
            f"batched sweep, {sdp_record['batch_pairs']} "
            "(switch, site-set) pairs",
            f"{sdp_record['batch_eval_s'] * 1e3:.1f}",
            f"{sdp_record['batch_pairs_per_second']:.0f} pairs/s",
        ),
        (
            "local search k=2 vs greedy",
            f"{sdp_record['local_evaluations']} evals",
            f"+{sdp_record['local_minus_greedy']:.2e} avail",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Workload", "Best (ms)", "Throughput"),
            rows,
            title="Network control-path analysis",
        )
    )
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
    merged["network"] = record
    merged["sdp"] = sdp_record
    out_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")


def _floors_ok(record: dict) -> bool:
    """Throughput floors, waived where timing cannot be meaningful."""
    if record["cpus"] < 2:
        return True
    return (
        record["analyses_per_second"] >= ANALYSIS_FLOOR_PER_S
        and record["placement_evaluations_per_second"]
        >= PLACEMENT_FLOOR_EVALS_PER_S
    )


def _sdp_floors_ok(record: dict) -> bool:
    """The tentpole floors: SDP speedup and batched-sweep throughput."""
    if record["cpus"] < 2:
        return True
    return (
        record["speedup"] >= SDP_SPEEDUP_FLOOR
        and record["batch_pairs_per_second"] >= BATCH_FLOOR_PAIRS_PER_S
    )


def test_network_bench():
    record = run_network_bench()
    sdp_record = run_sdp_bench()
    _report(record, sdp_record, DEFAULT_OUT)
    assert record["analysis_cut_sets"] > 0
    assert record["placement_evaluations"] == 21  # C(7, 2)
    assert sdp_record["local_minus_greedy"] >= 0.0
    assert _floors_ok(record)
    assert _sdp_floors_ok(sdp_record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless every workload meets its throughput floor",
    )
    args = parser.parse_args(argv)
    record = run_network_bench(repeats=args.repeats)
    sdp_record = run_sdp_bench(repeats=args.repeats)
    _report(record, sdp_record, args.out)
    if args.check:
        assert _floors_ok(record)
        assert _sdp_floors_ok(sdp_record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
