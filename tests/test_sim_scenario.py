"""Deterministic scenario tests — section III's narratives, executed.

Each test scripts one of the paper's failure-mode walkthroughs against the
frozen controller simulation and asserts the described plane behavior.
"""

import pytest

from repro.errors import SimulationError
from repro.params.software import RestartScenario
from repro.sim.scenario import Injection, ScenarioRunner

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


@pytest.fixture()
def runner(spec, small):
    return ScenarioRunner.for_controller(spec, small, scenario=S2)


@pytest.fixture()
def runner_s1(spec, small):
    return ScenarioRunner.for_controller(spec, small, scenario=S1)


class TestDatabaseQuorum:
    def test_one_database_process_down_keeps_quorum(self, runner):
        # "a lack of quorum of any of these processes only impacts the SDN
        # CP" — and one instance down is not lack of quorum (2 of 3).
        trace = runner.run(
            [Injection(1.0, "proc:Database/kafka-1", "fail")], horizon=10.0
        )
        assert trace.state_at("cp", 5.0)
        assert trace.state_at("dp", 5.0)

    def test_two_same_database_processes_break_cp(self, runner):
        trace = runner.run(
            [
                Injection(1.0, "proc:Database/kafka-1", "fail"),
                Injection(2.0, "proc:Database/kafka-2", "fail"),
                Injection(5.0, "proc:Database/kafka-1", "repair"),
            ],
            horizon=10.0,
        )
        assert trace.state_at("cp", 0.5)
        assert not trace.state_at("cp", 3.0)  # quorum lost
        assert trace.state_at("cp", 6.0)  # quorum restored
        # The DP is untouched throughout: Database is 0-of-3 for the DP.
        assert trace.state_at("dp", 3.0)
        assert trace.downtime("cp") == pytest.approx(3.0)

    def test_two_different_database_processes_keep_quorum(self, runner):
        # kafka-1 and zookeeper-2 down: each process still has 2 of 3.
        trace = runner.run(
            [
                Injection(1.0, "proc:Database/kafka-1", "fail"),
                Injection(2.0, "proc:Database/zookeeper-2", "fail"),
            ],
            horizon=10.0,
        )
        assert trace.state_at("cp", 5.0)


class TestSupervisorSemantics:
    def test_supervisor_failure_kills_node_role_in_scenario2(self, runner):
        # "one Database supervisor failure and any Database process failure
        # in another node, taking down two Database instances, resulting in
        # quorum loss."
        trace = runner.run(
            [
                Injection(1.0, "sup:Database-1", "fail"),
                Injection(2.0, "proc:Database/cassandra-config-2", "fail"),
                Injection(6.0, "sup:Database-1", "repair"),
            ],
            horizon=10.0,
        )
        assert trace.state_at("cp", 1.5)  # supervisor alone: still 2 of 3
        assert not trace.state_at("cp", 3.0)  # plus one process: quorum lost
        # Supervisor restart restores its whole node-role instantly...
        assert trace.state_at("cp", 7.0)

    def test_supervisor_repair_restores_failed_processes(self, runner):
        # Manual supervisor restart requires killing and auto-restarting
        # every process in the node-role — afterwards they are all up.
        trace = runner.run(
            [
                Injection(1.0, "sup:Config-1", "fail"),
                Injection(2.0, "proc:Config/config-api-1", "fail"),
                Injection(3.0, "proc:Config/config-api-2", "fail"),
                Injection(4.0, "proc:Config/config-api-3", "fail"),
                Injection(6.0, "sup:Config-1", "repair"),
            ],
            horizon=10.0,
        )
        assert not trace.state_at("cp", 5.0)  # all config-api down
        sim = runner.simulator
        # config-api-1 was restored by its supervisor's restart.
        assert sim.effectively_up("proc:Config/config-api-1")
        # config-api-2/3 belong to other node-roles: still down ("any
        # process failures within that node-role require manual restart").
        assert not sim.effectively_up("proc:Config/config-api-2")
        assert not sim.effectively_up("proc:Config/config-api-3")
        # But the restored instance satisfies the 1-of-3 quorum: CP is up.
        assert trace.state_at("cp", 7.0)

    def test_supervisor_irrelevant_in_scenario1(self, runner_s1):
        # Scenario 1: all supervisors down, functionality unimpaired
        # ("the supervisor is a '0 of 3' process").
        injections = [
            Injection(1.0, f"sup:{role}-{i}", "fail")
            for role in ("Config", "Control", "Analytics", "Database")
            for i in (1, 2, 3)
        ]
        trace = runner_s1.run(injections, horizon=10.0)
        assert trace.state_at("cp", 9.0)
        assert trace.state_at("dp", 9.0)


class TestControlPlaneVsDataPlane:
    def test_control_block_one_of_three_for_dp(self, runner):
        # {control+dns+named} is 1-of-3: two full Control nodes down leaves
        # the DP up; the third going down kills every host DP.
        trace = runner.run(
            [
                Injection(1.0, "proc:Control/control-1", "fail"),
                Injection(2.0, "proc:Control/control-2", "fail"),
                Injection(3.0, "proc:Control/control-3", "fail"),
                Injection(6.0, "proc:Control/control-2", "repair"),
            ],
            horizon=10.0,
        )
        assert trace.state_at("dp", 2.5)  # one control left: DP fine
        assert not trace.state_at("dp", 4.0)  # "BGP tables flushed"
        assert trace.state_at("dp", 7.0)
        # The CP lost its 1-of-3 control requirement at t=3 too.
        assert not trace.state_at("cp", 4.0)

    def test_mixed_control_dns_named_insufficient(self, runner):
        # "having only control-1 and dns-2 and named-3 available is not
        # sufficient for host DP availability".
        trace = runner.run(
            [
                # Leave control-1, dns-2, named-3; fail everything else in
                # the {control+dns+named} block.
                Injection(1.0, "proc:Control/control-2", "fail"),
                Injection(1.0, "proc:Control/control-3", "fail"),
                Injection(1.0, "proc:Control/dns-1", "fail"),
                Injection(1.0, "proc:Control/dns-3", "fail"),
                Injection(1.0, "proc:Control/named-1", "fail"),
                Injection(1.0, "proc:Control/named-2", "fail"),
            ],
            horizon=10.0,
        )
        assert not trace.state_at("dp", 5.0)
        # The CP only needs *control* 1-of-3 (control-1 is up) plus the
        # other roles, so the control plane survives.
        assert trace.state_at("cp", 5.0)

    def test_vrouter_process_kills_host_dp_only(self, runner):
        # "Any vrouter-agent or vrouter-dpdk process failure takes down the
        # DP for the entire host" — CP unaffected.
        trace = runner.run(
            [Injection(1.0, "local:vrouter-agent", "fail")], horizon=10.0
        )
        assert not trace.state_at("dp", 5.0)
        assert not trace.state_at("ldp", 5.0)
        assert trace.state_at("cp", 5.0)
        assert trace.state_at("sdp", 5.0)


class TestInfrastructure:
    def test_rack_failure_takes_small_topology_down(self, runner):
        trace = runner.run(
            [
                Injection(1.0, "rack:R1", "fail"),
                Injection(4.0, "rack:R1", "repair"),
            ],
            horizon=10.0,
        )
        assert not trace.state_at("cp", 2.0)
        assert not trace.state_at("sdp", 2.0)
        assert trace.state_at("cp", 5.0)

    def test_host_failure_leaves_quorum(self, runner):
        trace = runner.run(
            [Injection(1.0, "host:H1", "fail")], horizon=10.0
        )
        assert trace.state_at("cp", 5.0)  # 2 of 3 nodes remain

    def test_two_hosts_break_quorum(self, runner):
        trace = runner.run(
            [
                Injection(1.0, "host:H1", "fail"),
                Injection(2.0, "host:H2", "fail"),
            ],
            horizon=10.0,
        )
        assert not trace.state_at("cp", 5.0)


class TestRunnerValidation:
    def test_unknown_component_rejected(self, runner):
        with pytest.raises(SimulationError):
            runner.run([Injection(1.0, "proc:Ghost/x-1", "fail")], horizon=5.0)

    def test_injection_beyond_horizon_rejected(self, runner):
        with pytest.raises(SimulationError):
            runner.run([Injection(9.0, "rack:R1", "fail")], horizon=5.0)

    def test_bad_injection_kind_rejected(self):
        with pytest.raises(SimulationError):
            Injection(1.0, "rack:R1", "explode")

    def test_downtime_requires_known_signal(self, runner):
        trace = runner.run([], horizon=5.0)
        with pytest.raises(SimulationError):
            trace.downtime("ghost")
