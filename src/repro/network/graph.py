"""Immutable switch/link/controller-site control-network graphs.

The paper models the controller cluster in isolation; Nencioni et al.
(PAPERS.md) show the switch-to-controller *network* dominates availability
in real deployments.  This module provides the graph those analyses run
over: switches, routers, and controller sites as nodes, undirected links
between them, and optional shared-risk groups (SRGs) — a conduit, duct, or
power feed whose failure takes down every link routed through it, the
correlated-failure mechanism of Nencioni's backbone study.

Conventions match :mod:`repro.params.defaults`: every element carries a
steady-state availability as a probability in ``[0, 1]`` (MTBF/MTTR pairs
convert via :func:`repro.units.availability_from_mtbf`).  Graphs are frozen,
hashable value objects with a deterministic canonical serialization; the
graph hash flows through the same canonical-params path as run manifests
(:func:`repro.obs.manifest.params_hash`), so "same hash" means "same
analysis inputs, bit for bit".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import NetworkError
from repro.obs.manifest import params_hash
from repro.units import check_probability

__all__ = [
    "NODE_KINDS",
    "NetworkNode",
    "NetworkLink",
    "SharedRiskGroup",
    "NetworkGraph",
]

#: Valid node kinds: traffic-forwarding elements whose control path is being
#: evaluated ("switch"), transit-only elements ("router"), and controller
#: sites ("site").
NODE_KINDS: tuple[str, ...] = ("switch", "router", "site")


@dataclass(frozen=True)
class NetworkNode:
    """One network element: a switch, transit router, or controller site.

    Attributes:
        name: unique identity within the graph (shared namespace with links
            and SRGs, so cut sets can mix element types without ambiguity).
        kind: one of :data:`NODE_KINDS`.
        availability: steady-state probability the element is up.
    """

    name: str
    kind: str = "switch"
    availability: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("node name must be non-empty")
        if self.kind not in NODE_KINDS:
            raise NetworkError(
                f"node {self.name!r} kind must be one of {NODE_KINDS}, "
                f"got {self.kind!r}"
            )
        check_probability(self.availability, f"A({self.name})")


@dataclass(frozen=True)
class NetworkLink:
    """An undirected link between two nodes, optionally in a shared-risk group.

    A link is usable only when the link itself, both endpoints, and its SRG
    (if any) are all up.

    Attributes:
        name: unique identity within the graph.
        a: first endpoint node name.
        b: second endpoint node name.
        availability: steady-state probability the link itself is up
            (excluding endpoint and SRG state).
        srg: name of the :class:`SharedRiskGroup` this link is routed
            through, or ``None`` for an independently-failing link.
    """

    name: str
    a: str
    b: str
    availability: float = 1.0
    srg: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("link name must be non-empty")
        if self.a == self.b:
            raise NetworkError(f"link {self.name!r} is a self-loop on {self.a!r}")
        check_probability(self.availability, f"A({self.name})")

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError(f"link {self.name!r} does not touch node {node!r}")


@dataclass(frozen=True)
class SharedRiskGroup:
    """A shared failure domain (conduit, duct, power feed) for links.

    Every link with ``srg == name`` fails together when the group fails —
    the correlated link-failure mechanism of the Nencioni backbone model.
    """

    name: str
    availability: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise NetworkError("shared-risk-group name must be non-empty")
        check_probability(self.availability, f"A({self.name})")


@dataclass(frozen=True)
class NetworkGraph:
    """A frozen control-network graph with canonical serialization.

    Element names share one namespace (nodes, links, and SRGs may not
    collide), so a cut set like ``{"L2", "R1"}`` is unambiguous.  Instances
    are hashable and safe as ``functools.lru_cache`` keys, which is how the
    exact per-switch evaluator in :mod:`repro.network.paths` memoizes.
    """

    name: str
    nodes: tuple[NetworkNode, ...]
    links: tuple[NetworkLink, ...]
    srgs: tuple[SharedRiskGroup, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "srgs", tuple(self.srgs))
        if not self.name:
            raise NetworkError("graph name must be non-empty")
        if not self.nodes:
            raise NetworkError(f"graph {self.name!r} has no nodes")
        names: set[str] = set()
        for element in (*self.nodes, *self.links, *self.srgs):
            if element.name in names:
                raise NetworkError(
                    f"graph {self.name!r} has duplicate element name "
                    f"{element.name!r}"
                )
            names.add(element.name)
        node_names = {node.name for node in self.nodes}
        srg_names = {srg.name for srg in self.srgs}
        for link in self.links:
            for endpoint in (link.a, link.b):
                if endpoint not in node_names:
                    raise NetworkError(
                        f"link {link.name!r} endpoint {endpoint!r} is not a "
                        f"node of graph {self.name!r}"
                    )
            if link.srg is not None and link.srg not in srg_names:
                raise NetworkError(
                    f"link {link.name!r} references unknown shared-risk "
                    f"group {link.srg!r}"
                )

    # -- accessors ------------------------------------------------------------

    def node(self, name: str) -> NetworkNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise NetworkError(f"graph {self.name!r} has no node {name!r}")

    def link(self, name: str) -> NetworkLink:
        for link in self.links:
            if link.name == name:
                return link
        raise NetworkError(f"graph {self.name!r} has no link {name!r}")

    @property
    def switches(self) -> tuple[str, ...]:
        """Switch node names, in graph order."""
        return tuple(n.name for n in self.nodes if n.kind == "switch")

    @property
    def sites(self) -> tuple[str, ...]:
        """Controller-site node names, in graph order."""
        return tuple(n.name for n in self.nodes if n.kind == "site")

    @property
    def component_names(self) -> tuple[str, ...]:
        """All element names — nodes, then links, then SRGs, in graph order."""
        return (
            *(n.name for n in self.nodes),
            *(link.name for link in self.links),
            *(srg.name for srg in self.srgs),
        )

    def adjacency(self) -> dict[str, tuple[NetworkLink, ...]]:
        """Node name -> incident links, in graph order."""
        incident: dict[str, list[NetworkLink]] = {n.name: [] for n in self.nodes}
        for link in self.links:
            incident[link.a].append(link)
            incident[link.b].append(link)
        return {name: tuple(links) for name, links in incident.items()}

    def availability_map(self) -> dict[str, float]:
        """Element name -> steady-state probability of being up."""
        out: dict[str, float] = {}
        for element in (*self.nodes, *self.links, *self.srgs):
            out[element.name] = element.availability
        return out

    def unavailability_map(self) -> dict[str, float]:
        """Element name -> steady-state probability of being down."""
        return {
            name: 1.0 - availability
            for name, availability in self.availability_map().items()
        }

    def is_connected(self) -> bool:
        """Whether every node is reachable from the first (links assumed up)."""
        adjacency = self.adjacency()
        seen = {self.nodes[0].name}
        stack = [self.nodes[0].name]
        while stack:
            current = stack.pop()
            for link in adjacency[current]:
                neighbor = link.other(current)
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self.nodes)

    # -- canonical serialization ----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-serializable record (element order preserved)."""
        record: dict[str, Any] = {
            "name": self.name,
            "nodes": [
                {"name": n.name, "kind": n.kind, "availability": n.availability}
                for n in self.nodes
            ],
            "links": [
                {
                    "name": link.name,
                    "a": link.a,
                    "b": link.b,
                    "availability": link.availability,
                    "srg": link.srg,
                }
                for link in self.links
            ],
            "srgs": [
                {"name": srg.name, "availability": srg.availability}
                for srg in self.srgs
            ],
        }
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "NetworkGraph":
        data = dict(record)
        unknown = set(data) - {"name", "nodes", "links", "srgs"}
        if unknown:
            raise NetworkError(
                f"unknown network-graph field(s) {sorted(unknown)}"
            )
        try:
            nodes = tuple(NetworkNode(**entry) for entry in data.get("nodes", ()))
            links = tuple(NetworkLink(**entry) for entry in data.get("links", ()))
            srgs = tuple(
                SharedRiskGroup(**entry) for entry in data.get("srgs", ())
            )
            return cls(
                name=data.get("name", ""), nodes=nodes, links=links, srgs=srgs
            )
        except TypeError as error:
            raise NetworkError(f"invalid network-graph record: {error}") from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "NetworkGraph":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise NetworkError(f"invalid network-graph JSON: {error}") from None
        if not isinstance(record, dict):
            raise NetworkError("network-graph JSON must be an object")
        return cls.from_dict(record)

    def graph_hash(self) -> str:
        """SHA-256 over the canonical serialization.

        Uses the same canonical-params hashing as run manifests
        (:func:`repro.obs.manifest.params_hash`): equal hashes mean every
        analytic and simulated result derived from the graph is bit-identical
        given equal seeds.
        """
        return params_hash(self.to_dict())
