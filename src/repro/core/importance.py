"""Component importance measures.

The paper's concluding guidance — "identifying these process weak links
allows service provider operations to develop automation to reduce downtime"
— is the classic use case for importance measures.  Implemented here:

* **Birnbaum importance** — ``dA_sys/dA_i``: the sensitivity of system
  availability to component ``i``'s availability, computed exactly as
  ``A_sys(i up) - A_sys(i down)``.
* **Improvement potential** — ``A_sys(i up) - A_sys``: availability gained
  by making the component perfect.
* **Fussell-Vesely importance** — the fraction of system unavailability
  attributable to cut sets containing the component (union-bound form).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.structure import StructureFunction
from repro.errors import ModelError


def birnbaum_importance(
    structure: StructureFunction, probabilities: Mapping[str, float]
) -> dict[str, float]:
    """Exact Birnbaum importance ``I_B(i) = A(1_i, p) - A(0_i, p)`` per component."""
    result: dict[str, float] = {}
    for name in structure.names:
        up = dict(probabilities)
        up[name] = 1.0
        down = dict(probabilities)
        down[name] = 0.0
        result[name] = structure.availability(up) - structure.availability(down)
    return result


def improvement_potential(
    structure: StructureFunction, probabilities: Mapping[str, float]
) -> dict[str, float]:
    """Availability gained by making each component perfectly available."""
    base = structure.availability(probabilities)
    result: dict[str, float] = {}
    for name in structure.names:
        up = dict(probabilities)
        up[name] = 1.0
        result[name] = structure.availability(up) - base
    return result


def fussell_vesely(
    cut_sets: Sequence[frozenset[str]],
    unavailability: Mapping[str, float],
) -> dict[str, float]:
    """Fussell-Vesely importance from minimal cut sets (union-bound form).

    ``FV(i) = (sum of probabilities of cut sets containing i) / (sum over
    all cut sets)``.  Components appearing in no cut set score 0.
    """
    if not cut_sets:
        raise ModelError("need at least one cut set")
    per_cut = []
    for cut in cut_sets:
        probability = 1.0
        for name in cut:
            probability *= unavailability[name]
        per_cut.append((cut, probability))
    total = sum(p for _, p in per_cut)
    names = set().union(*cut_sets)
    result = {name: 0.0 for name in names}
    if total == 0.0:
        return result
    for cut, probability in per_cut:
        for name in cut:
            result[name] += probability
    return {name: value / total for name, value in result.items()}
