"""Sum-of-disjoint-products (SDP) evaluation of coherent structures.

The exact evaluators in :mod:`repro.core.structure` walk the state space —
either all ``2**n`` states or a Shannon factoring of them — which is the
right tool up to a few tens of components and hopeless past that.  The
classic way out (Abraham 1979, the workhorse of network-reliability codes)
starts from the system's *minimal path sets* instead: the up event is the
union of "all elements of path ``i`` up" events, and rewriting that union
as a sum of **mutually disjoint** products makes exact availability a plain
sum over terms, each a product of element availabilities and element
*un*availabilities.

Two properties make the rewrite a kernel worth compiling once and reusing:

* the disjoint terms depend only on the path sets, **not** on the element
  probabilities — one compile serves every availability vector, which is
  what the batched sweeps in :mod:`repro.network.batch` exploit; and
* each term is a pair of index sets, so evaluation vectorizes into
  segmented products over an availability array
  (:func:`repro.perf.vectorized.segment_products`).

The disjointing here is Abraham's single-variable inversion: paths are
ordered shortest-first (the early-termination ordering — short paths carry
the bulk of the probability and generate the fewest complements), and each
path's term is split against every earlier path it does not already miss.
Compiles are memoized on the canonical path-set tuple
(:func:`sdp_terms`), so repeated compiles of the same structure — e.g. the
bound computation and the exact evaluation of one switch — share work.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import AbstractSet, Iterable, Mapping

from repro.errors import ModelError
from repro.units import check_probability

__all__ = [
    "SdpTerm",
    "SdpExpression",
    "canonical_path_sets",
    "sdp_terms",
    "compile_sdp",
]


@dataclass(frozen=True)
class SdpTerm:
    """One disjoint product: every ``up`` element up, every ``down`` down.

    The term's probability is ``prod(p[e] for e in up) * prod(1 - p[e] for
    e in down)``; across an :class:`SdpExpression` the terms' events are
    pairwise disjoint and their union is the system-up event.
    """

    up: frozenset[str]
    down: frozenset[str]

    def probability(self, probabilities: Mapping[str, float]) -> float:
        value = 1.0
        for name in self.up:
            value *= probabilities[name]
        for name in self.down:
            value *= 1.0 - probabilities[name]
        return value


def canonical_path_sets(
    path_sets: Iterable[AbstractSet[str]],
) -> tuple[frozenset[str], ...]:
    """Deduplicated, minimality-filtered, deterministically ordered paths.

    Supersets of other path sets are dropped (they cannot change the union
    and only inflate the term count), then paths are ordered shortest-first
    with a lexicographic tie-break — Abraham's early-termination ordering,
    which both fixes the expansion deterministically and keeps it small.
    """
    unique = {frozenset(path) for path in path_sets}
    minimal = [
        path
        for path in unique
        if not any(other < path for other in unique)
    ]
    return tuple(
        sorted(minimal, key=lambda path: (len(path), tuple(sorted(path))))
    )


@lru_cache(maxsize=4096)
def sdp_terms(
    paths: tuple[frozenset[str], ...],
) -> tuple[SdpTerm, ...]:
    """Disjoint products of an ordered minimal-path-set tuple.

    ``paths`` must already be canonical (see :func:`canonical_path_sets`) —
    the memo key is the tuple itself.  Term ``i``'s event is "path ``i``
    works and every earlier path fails"; summed over ``i`` these partition
    the system-up event, so availability is the plain sum of term
    probabilities.

    For each earlier path ``P_j`` and current partial term ``(U, D)``:

    * if ``P_j`` hits ``D``, the term already implies ``P_j`` fails — keep;
    * if ``P_j`` is contained in ``U``, the term implies ``P_j`` works —
      the term is impossible, drop it;
    * otherwise split on the elements ``R = P_j - U`` with single-variable
      inversion: "some element of R down" becomes the disjoint sum over
      ``k`` of "r_1..r_{k-1} up and r_k down".

    The inner loop runs on integer bitmasks (bit ``i`` = the ``i``-th
    element in global sorted-name order, so "ascending bit" and "sorted
    name" orderings coincide); sets are materialized only for the final
    terms.  This is the compile hot path — bit operations keep the
    disjointing an order of magnitude faster than frozenset algebra.
    """
    ordered_names = sorted({name for path in paths for name in path})
    bit_of = {name: 1 << i for i, name in enumerate(ordered_names)}
    masks = [
        sum(bit_of[name] for name in path) for path in paths
    ]

    def names_of(mask: int) -> frozenset[str]:
        out = []
        while mask:
            low = mask & -mask
            out.append(ordered_names[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    terms: list[SdpTerm] = []
    for index, path_mask in enumerate(masks):
        partial: list[tuple[int, int]] = [(path_mask, 0)]
        for previous in masks[:index]:
            if not partial:
                break
            split: list[tuple[int, int]] = []
            for up, down in partial:
                if previous & down:
                    split.append((up, down))
                    continue
                rest = previous & ~up
                if not rest:
                    continue  # previous path works whenever this term holds
                while rest:
                    low = rest & -rest
                    rest ^= low
                    split.append((up, down | low))
                    up |= low
            partial = split
        terms.extend(
            SdpTerm(names_of(up), names_of(down)) for up, down in partial
        )
    return tuple(terms)


@dataclass(frozen=True)
class SdpExpression:
    """A compiled sum-of-disjoint-products over named elements.

    Attributes:
        names: every element appearing in any path, deterministic order.
        paths: the canonical minimal path sets the expression was compiled
            from (shortest-first).
        terms: the disjoint products; availability is their probability sum.
    """

    names: tuple[str, ...]
    paths: tuple[frozenset[str], ...]
    terms: tuple[SdpTerm, ...]

    @property
    def term_count(self) -> int:
        return len(self.terms)

    def _check(self, probabilities: Mapping[str, float]) -> None:
        for name in self.names:
            if name not in probabilities:
                raise ModelError(
                    f"missing probability for component {name!r}"
                )
            check_probability(probabilities[name], name)

    def availability(self, probabilities: Mapping[str, float]) -> float:
        """Exact system availability: the sum of disjoint term probabilities."""
        self._check(probabilities)
        return min(
            1.0,
            max(
                0.0,
                sum(term.probability(probabilities) for term in self.terms),
            ),
        )

    def unavailability(self, probabilities: Mapping[str, float]) -> float:
        return 1.0 - self.availability(probabilities)


def compile_sdp(path_sets: Iterable[AbstractSet[str]]) -> SdpExpression:
    """Compile minimal path sets into a reusable disjoint-products expression.

    An empty path-set collection is legal and yields the always-down system
    (availability 0) — the network layer hits this when a switch has no
    route to any controller site.
    """
    paths = canonical_path_sets(path_sets)
    for path in paths:
        if not path:
            raise ModelError(
                "an empty path set would make the system always up; "
                "refusing to compile a degenerate SDP"
            )
    names_seen: dict[str, None] = {}
    for path in paths:
        for name in sorted(path):
            names_seen.setdefault(name)
    return SdpExpression(
        names=tuple(names_seen),
        paths=paths,
        terms=sdp_terms(paths),
    )
