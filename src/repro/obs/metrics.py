"""A small metrics registry: counters, gauges, timing histograms.

Instruments in this codebase report three shapes of measurement:

* :class:`Counter` — monotonically increasing event counts (cache hits,
  Monte-Carlo samples, simulator events);
* :class:`Gauge` — last-value-wins observations (worker utilization,
  samples/second of the most recent run);
* :class:`TimingHistogram` — streaming summary of a duration distribution
  (per-chunk wall times, per-evaluator sweep timings) keeping count, sum,
  min, and max without storing samples, so observation cost is O(1) and
  the registry's footprint is independent of run length.

The registry is deliberately process-local and lock-free: instrumented
sections run either inline or in worker *processes* (which carry their own,
disabled, registry), never in racing threads.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["Counter", "Gauge", "TimingHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


class TimingHistogram:
    """Streaming summary statistics of observed durations."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, TimingHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> TimingHistogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = TimingHistogram(name)
        return histogram

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable view of every metric, sorted by name."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
