"""Tests for topology generation and design search."""

import pytest

from repro.controller.spec import Plane
from repro.errors import ModelError, TopologyError
from repro.models.design import (
    CostModel,
    cheapest_meeting,
    enumerate_designs,
    pareto_frontier,
)
from repro.models.sw import plane_availability_exact
from repro.params.software import RestartScenario
from repro.topology.generate import combined_nodes_topology, separated_topology

S2 = RestartScenario.REQUIRED


class TestGenerators:
    def test_combined_1r_is_small(self, spec, small, hardware, software):
        generated = combined_nodes_topology(spec, 1)
        for scenario in RestartScenario:
            assert plane_availability_exact(
                spec, Plane.CP, generated, hardware, software, scenario
            ) == pytest.approx(
                plane_availability_exact(
                    spec, Plane.CP, small, hardware, software, scenario
                ),
                rel=1e-12,
            )

    def test_separated_3r_is_large(self, spec, large, hardware, software):
        generated = separated_topology(spec, 3)
        assert plane_availability_exact(
            spec, Plane.CP, generated, hardware, software, S2
        ) == pytest.approx(
            plane_availability_exact(
                spec, Plane.CP, large, hardware, software, S2
            ),
            rel=1e-12,
        )

    def test_round_robin_rack_assignment(self, spec):
        topo = combined_nodes_topology(spec, 2)
        racks = {h.name: h.rack for h in topo.hosts}
        assert racks == {"H1": "R1", "H2": "R2", "H3": "R1"}

    def test_racks_used_validated(self, spec):
        with pytest.raises(TopologyError):
            combined_nodes_topology(spec, 0)
        with pytest.raises(TopologyError):
            separated_topology(spec, 4)

    def test_five_node_generation(self):
        roles = ("A", "B")
        topo = separated_topology(roles, 3, cluster_size=5)
        assert len(topo.racks) == 3
        assert len(topo.hosts) == 10


class TestDesignSearch:
    @pytest.fixture()
    def points(self, spec, hardware, software):
        return enumerate_designs(spec, hardware, software, S2)

    def test_six_candidates(self, points):
        assert len(points) == 6
        names = {p.name for p in points}
        assert "Combined-1R" in names and "Separated-3R" in names

    def test_frontier_is_one_rack_or_three(self, points):
        # The paper's law, rediscovered by mechanical search: two racks
        # are never on the frontier, and separated layouts never beat
        # combined ones at the same rack count.
        frontier = pareto_frontier(points)
        assert [p.name for p in frontier] == ["Combined-1R", "Combined-3R"]

    def test_separation_buys_nothing(self, points):
        by_name = {p.name: p for p in points}
        for racks in (1, 2, 3):
            combined = by_name[f"Combined-{racks}R"]
            separated = by_name[f"Separated-{racks}R"]
            assert separated.availability == pytest.approx(
                combined.availability, abs=1e-7
            )
            assert separated.cost > combined.cost

    def test_cheapest_meeting_target(self, points):
        # ~5.3 min/yr needs nothing special; 1.4 m/y needs three racks.
        modest = cheapest_meeting(points, 0.99998)
        assert modest.name == "Combined-1R"
        strict = cheapest_meeting(points, 0.999995)
        assert strict.name == "Combined-3R"
        assert cheapest_meeting(points, 0.99999999) is None

    def test_custom_cost_model(self, spec, hardware, software):
        # Free racks, expensive hosts: frontier unchanged in membership
        # order but costs differ.
        points = enumerate_designs(
            spec, hardware, software, S2,
            cost_model=CostModel(rack_cost=0.0, host_cost=5.0),
        )
        by_name = {p.name: p for p in points}
        assert by_name["Combined-3R"].cost == pytest.approx(15.0)

    def test_design_point_metrics(self, points):
        point = points[0]
        assert point.downtime_minutes > 0
        assert point.nines > 4

    def test_empty_frontier_rejected(self):
        with pytest.raises(ModelError):
            pareto_frontier([])
