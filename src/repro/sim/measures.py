"""Time-weighted measurement of binary availability signals.

:class:`BinarySignal` integrates a boolean signal over simulated time —
the estimator of steady-state availability — and records per-batch means so
a confidence interval can be formed by the batch-means method (simulation
output is autocorrelated; i.i.d. formulas on raw samples would be wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import SimulationError

#: Cause label for outage episodes no transition was recorded for (e.g. a
#: signal that starts down before any component transition).
UNATTRIBUTED = "unattributed"


@dataclass(frozen=True, slots=True)
class SignalAttribution:
    """Per-signal downtime attribution ledger.

    Maps each *cause* of the signal's outage episodes — the component key
    whose transition opened the episode, and the hazard source behind that
    transition — to the tuple of episode durations it is charged with.
    Durations are kept as tuples (never pre-summed): ``math.fsum`` over a
    multiset of floats is exactly rounded and therefore grouping-
    independent, which is what lets the conservation invariant hold with
    ``==`` — the per-component ledger sums *exactly* to the signal's total
    outage seconds, and merging across replications (tuple concatenation)
    preserves that exactness.
    """

    name: str
    components: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    sources: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    #: episode counts by depth of the flipped key in the triggering
    #: component's dependents closure (0 = the component itself).
    depths: Mapping[int, int] = field(default_factory=dict)
    open_episodes: int = 0

    @property
    def episode_count(self) -> int:
        return sum(len(durations) for durations in self.components.values())

    def component_seconds(self) -> dict[str, float]:
        """Exact downtime seconds charged to each component."""
        return {
            key: math.fsum(durations)
            for key, durations in self.components.items()
        }

    def source_seconds(self) -> dict[str, float]:
        """Exact downtime seconds charged to each hazard source."""
        return {
            key: math.fsum(durations)
            for key, durations in self.sources.items()
        }

    def total_seconds(self) -> float:
        """Total attributed downtime (fsum over the full duration multiset)."""
        return math.fsum(
            duration
            for durations in self.components.values()
            for duration in durations
        )

    def to_dict(self) -> dict:
        """JSON-serializable summary (seconds per cause, episode counts)."""
        return {
            "episodes": self.episode_count,
            "open_episodes": self.open_episodes,
            "total_seconds": self.total_seconds(),
            "components": self.component_seconds(),
            "sources": self.source_seconds(),
            "depths": {str(k): v for k, v in sorted(self.depths.items())},
        }

    @classmethod
    def merge(
        cls, ledgers: Iterable["SignalAttribution"], name: str | None = None
    ) -> "SignalAttribution":
        """Concatenate ledgers (e.g. across campaign replications)."""
        components: dict[str, tuple[float, ...]] = {}
        sources: dict[str, tuple[float, ...]] = {}
        depths: dict[int, int] = {}
        open_episodes = 0
        merged_name = name
        for ledger in ledgers:
            if merged_name is None:
                merged_name = ledger.name
            for key, durations in ledger.components.items():
                components[key] = components.get(key, ()) + tuple(durations)
            for key, durations in ledger.sources.items():
                sources[key] = sources.get(key, ()) + tuple(durations)
            for depth, count in ledger.depths.items():
                depths[depth] = depths.get(depth, 0) + count
            open_episodes += ledger.open_episodes
        return cls(
            name=merged_name or "",
            components=components,
            sources=sources,
            depths=depths,
            open_episodes=open_episodes,
        )


class BinarySignal:
    """Integrates an up/down signal over time.

    Besides the time-weighted availability, the signal records *outage
    episodes* — maximal down intervals — enabling frequency/duration
    statistics that validate the cut-set outage calculus
    (:mod:`repro.analysis.frequency`).

    Instances sit on the simulator's per-event path (every state-changing
    event updates every signal), so the class is slotted.
    """

    __slots__ = (
        "name",
        "_state",
        "_last_change",
        "_up_time",
        "_total_time",
        "_outage_started",
        "_outage_durations",
        "_outage_causes",
        "_open_cause",
    )

    def __init__(self, name: str, initial: bool, start_time: float = 0.0):
        self.name = name
        self._state = bool(initial)
        self._last_change = start_time
        self._up_time = 0.0
        self._total_time = 0.0
        self._outage_started = None if self._state else start_time
        self._outage_durations: list[float] = []
        # One cause per completed episode, aligned with _outage_durations:
        # (component_key, hazard_source, closure_depth) or None.
        self._outage_causes: list[tuple[str, str, int] | None] = []
        self._open_cause: tuple[str, str, int] | None = None

    @property
    def state(self) -> bool:
        return self._state

    def update(self, time: float, state: bool) -> None:
        """Record the signal value from ``time`` onward."""
        if time < self._last_change:
            raise SimulationError(
                f"signal {self.name!r} updated backwards in time"
            )
        elapsed = time - self._last_change
        self._total_time += elapsed
        if self._state:
            self._up_time += elapsed
        state = bool(state)
        if self._state and not state:
            self._outage_started = time
            self._open_cause = None
        elif not self._state and state:
            if self._outage_started is not None:
                self._outage_durations.append(time - self._outage_started)
                self._outage_causes.append(self._open_cause)
            self._outage_started = None
            self._open_cause = None
        self._state = state
        self._last_change = time

    @property
    def outage_count(self) -> int:
        """Completed outage episodes observed so far."""
        return len(self._outage_durations)

    @property
    def outage_durations(self) -> tuple[float, ...]:
        """Durations of the completed outage episodes."""
        return tuple(self._outage_durations)

    def mean_outage_duration(self) -> float:
        """Mean completed-outage length; raises when none were observed."""
        if not self._outage_durations:
            raise SimulationError(
                f"signal {self.name!r} observed no completed outages"
            )
        return sum(self._outage_durations) / len(self._outage_durations)

    def outage_frequency(self) -> float:
        """Completed outages per unit of observed time."""
        if self._total_time <= 0:
            raise SimulationError(
                f"signal {self.name!r} observed no time; run the simulation"
            )
        return len(self._outage_durations) / self._total_time

    def attribute_open_outage(
        self, component: str, source: str, depth: int
    ) -> None:
        """Stamp the cause of the outage episode that just opened.

        The engine calls this immediately after the up->down edge it
        caused; only the first stamp per episode sticks (the triggering
        transition, not later pile-on failures during the same outage).
        No-op while the signal is up.
        """
        if self._outage_started is not None and self._open_cause is None:
            self._open_cause = (component, source, depth)

    def outage_seconds(self) -> float:
        """Total outage time: completed episodes plus any open episode.

        ``fsum`` over the episode-duration multiset — the exact quantity
        the attribution ledger conserves.
        """
        durations = list(self._outage_durations)
        if self._outage_started is not None:
            durations.append(self._last_change - self._outage_started)
        return math.fsum(durations)

    def attribution(self) -> SignalAttribution:
        """The per-cause downtime ledger observed so far.

        Includes a trailing still-open episode (duration up to the last
        integration point) so the ledger conserves :meth:`outage_seconds`
        exactly; episodes with no recorded cause are charged to
        :data:`UNATTRIBUTED`.
        """
        components: dict[str, tuple[float, ...]] = {}
        sources: dict[str, tuple[float, ...]] = {}
        depths: dict[int, int] = {}

        def charge(cause: tuple[str, str, int] | None, duration: float):
            component, source, depth = cause or (UNATTRIBUTED, UNATTRIBUTED, -1)
            components[component] = components.get(component, ()) + (duration,)
            sources[source] = sources.get(source, ()) + (duration,)
            if depth >= 0:
                depths[depth] = depths.get(depth, 0) + 1

        for duration, cause in zip(self._outage_durations, self._outage_causes):
            charge(cause, duration)
        open_episodes = 0
        if self._outage_started is not None:
            open_episodes = 1
            charge(self._open_cause, self._last_change - self._outage_started)
        return SignalAttribution(
            name=self.name,
            components=components,
            sources=sources,
            depths=depths,
            open_episodes=open_episodes,
        )

    def finalize(self, time: float) -> None:
        """Close the integration window at the horizon."""
        self.update(time, self._state)

    @property
    def observed_time(self) -> float:
        return self._total_time

    def cumulative(self) -> tuple[float, float]:
        """``(up_time, total_time)`` integrated so far — batch bookkeeping."""
        return self._up_time, self._total_time

    def availability(self) -> float:
        """Fraction of observed time the signal was up."""
        if self._total_time <= 0:
            raise SimulationError(
                f"signal {self.name!r} observed no time; run the simulation"
            )
        return self._up_time / self._total_time


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric normal-approximation confidence interval."""

    mean: float
    half_width: float
    batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def batch_means_interval(
    batch_values: list[float], z: float = 1.96
) -> ConfidenceInterval:
    """Batch-means confidence interval from per-batch availability means.

    Standard method for steady-state simulation output: split the horizon
    into equal batches, treat batch means as approximately i.i.d. normal.
    Requires at least 2 batches.
    """
    k = len(batch_values)
    if k < 2:
        raise SimulationError(
            f"batch-means needs at least 2 batches, got {k}"
        )
    mean = sum(batch_values) / k
    variance = sum((v - mean) ** 2 for v in batch_values) / (k - 1)
    half_width = z * math.sqrt(variance / k)
    return ConfidenceInterval(mean=mean, half_width=half_width, batches=k)
