"""Esary-Proschan availability bounds from minimal path and cut sets.

For a coherent system of independent components, the classic bounds hold::

    prod_{cuts C} P(C not all down)  <=  A_sys  <=  1 - prod_{paths P} P(P not all up)

The lower (min-cut) bound is tight exactly when no component appears in
two cut sets; in the high-availability regime it is accurate to second
order, which is why the paper's union-bound reasoning works.  These bounds
give cheap certified brackets for systems whose exact evaluation would be
expensive, and serve as one more independent cross-check of the engine.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ModelError
from repro.units import check_probability


def min_cut_lower_bound(
    cut_sets: Sequence[frozenset[str]],
    availability: Mapping[str, float],
) -> float:
    """Esary-Proschan lower bound: product over cuts of P(cut not all down)."""
    if not cut_sets:
        raise ModelError("need at least one cut set")
    bound = 1.0
    for cut in cut_sets:
        all_down = 1.0
        for name in cut:
            p = check_probability(availability[name], name)
            all_down *= 1.0 - p
        bound *= 1.0 - all_down
    return bound


def min_path_upper_bound(
    path_sets: Sequence[frozenset[str]],
    availability: Mapping[str, float],
) -> float:
    """Esary-Proschan upper bound: complement-product over path sets."""
    if not path_sets:
        raise ModelError("need at least one path set")
    all_paths_broken = 1.0
    for path in path_sets:
        all_up = 1.0
        for name in path:
            p = check_probability(availability[name], name)
            all_up *= p
        all_paths_broken *= 1.0 - all_up
    return 1.0 - all_paths_broken


def esary_proschan_bounds(
    cut_sets: Sequence[frozenset[str]],
    path_sets: Sequence[frozenset[str]],
    availability: Mapping[str, float],
) -> tuple[float, float]:
    """``(lower, upper)`` availability bracket for a coherent system."""
    lower = min_cut_lower_bound(cut_sets, availability)
    upper = min_path_upper_bound(path_sets, availability)
    if lower > upper + 1e-12:
        raise ModelError(
            "bounds crossed — cut/path sets are inconsistent with a "
            "coherent system"
        )
    return lower, min(1.0, upper)
