"""Tests for availability unit conversions (repro.units)."""

import math

import pytest

from repro.errors import ParameterError
from repro.units import (
    MINUTES_PER_YEAR,
    availability_from_downtime,
    availability_from_mtbf,
    availability_from_nines,
    check_positive,
    check_probability,
    downtime_minutes_per_year,
    mttr_from_availability,
    nines,
    scale_downtime,
)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_returns_value(self):
        assert check_probability(0.5) == 0.5

    def test_rejects_above_one(self):
        with pytest.raises(ParameterError):
            check_probability(1.0000001)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_probability(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ParameterError):
            check_probability(float("nan"))

    def test_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            check_probability("high")

    def test_error_names_parameter(self):
        with pytest.raises(ParameterError, match="A_H"):
            check_probability(2.0, "A_H")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(5.0) == 5.0

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive(0.0)

    def test_rejects_infinite(self):
        with pytest.raises(ParameterError):
            check_positive(math.inf)


class TestMtbfConversions:
    def test_paper_process_availability(self):
        # F = 5000 h, R = 0.1 h -> A ~= 0.99998 (section VI.A).
        assert availability_from_mtbf(5000.0, 0.1) == pytest.approx(
            0.99998, abs=1e-6
        )

    def test_paper_supervisor_availability(self):
        # R_S = 1 h -> A_S ~= 0.9998.
        assert availability_from_mtbf(5000.0, 1.0) == pytest.approx(
            0.9998, abs=1e-5
        )

    def test_zero_mttr_is_perfect(self):
        assert availability_from_mtbf(100.0, 0.0) == 1.0

    def test_roundtrip(self):
        a = availability_from_mtbf(5000.0, 2.5)
        assert mttr_from_availability(a, 5000.0) == pytest.approx(2.5)

    def test_rejects_negative_mttr(self):
        with pytest.raises(ParameterError):
            availability_from_mtbf(100.0, -1.0)

    def test_mttr_rejects_zero_availability(self):
        with pytest.raises(ParameterError):
            mttr_from_availability(0.0, 100.0)


class TestDowntime:
    def test_five_nines_is_about_five_minutes(self):
        # The paper's A_R = 0.99999 rack -> ~5.26 min/yr, the "third rack
        # saves 5 minutes/year" figure.
        assert downtime_minutes_per_year(0.99999) == pytest.approx(
            5.26, abs=0.01
        )

    def test_perfect_availability_no_downtime(self):
        assert downtime_minutes_per_year(1.0) == 0.0

    def test_roundtrip(self):
        a = 0.99975
        minutes = downtime_minutes_per_year(a)
        assert availability_from_downtime(minutes) == pytest.approx(a)

    def test_rejects_excessive_downtime(self):
        with pytest.raises(ParameterError):
            availability_from_downtime(MINUTES_PER_YEAR + 1)


class TestNines:
    def test_three_nines(self):
        assert nines(0.999) == pytest.approx(3.0)

    def test_perfect_is_infinite(self):
        assert nines(1.0) == math.inf

    def test_roundtrip(self):
        assert availability_from_nines(nines(0.9995)) == pytest.approx(0.9995)

    def test_rejects_negative_nines(self):
        with pytest.raises(ParameterError):
            availability_from_nines(-1)


class TestScaleDowntime:
    def test_zero_orders_is_identity(self):
        assert scale_downtime(0.99998, 0.0) == pytest.approx(0.99998)

    def test_plus_one_order_reduces_downtime_tenfold(self):
        scaled = scale_downtime(0.99998, 1.0)
        assert (1 - scaled) == pytest.approx((1 - 0.99998) / 10)

    def test_minus_one_order_increases_downtime_tenfold(self):
        scaled = scale_downtime(0.99998, -1.0)
        assert (1 - scaled) == pytest.approx((1 - 0.99998) * 10)

    def test_paper_sweep_endpoints(self):
        # Figs. 4-5: x = -1 maps A = 0.99998 to 0.9998 and A_S = 0.9998 to
        # 0.998; x = +1 maps A to 0.999998.
        assert scale_downtime(0.99998, -1.0) == pytest.approx(0.9998)
        assert scale_downtime(0.9998, -1.0) == pytest.approx(0.998)
        assert scale_downtime(0.99998, 1.0) == pytest.approx(0.999998)

    def test_rejects_overflow(self):
        with pytest.raises(ParameterError):
            scale_downtime(0.5, -1.0)  # downtime would exceed 1
