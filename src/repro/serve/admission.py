"""Admission control for the campaign job queue.

Monte-Carlo campaign jobs hold a worker thread and a process-pool lease
for seconds to minutes, so the service bounds what it accepts *before*
enqueueing — a saturated queue answers ``429`` immediately instead of
growing an unbounded backlog:

* a global cap on queued-plus-running jobs (``max_queue_depth``);
* a per-tenant cap on in-flight jobs (``max_tenant_inflight``), so one
  noisy tenant cannot occupy the whole queue.

Rejections raise :class:`AdmissionError` (HTTP 429) and increment shed
counters that surface through the OpenMetrics endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError, ServeError

__all__ = ["AdmissionError", "AdmissionPolicy", "AdmissionController"]


class AdmissionError(ServeError):
    """The job was shed by admission control (HTTP 429)."""

    def __init__(self, message: str):
        super().__init__(message, status=429)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Static admission limits for one service instance."""

    max_queue_depth: int = 32
    max_tenant_inflight: int = 8

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ParameterError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_tenant_inflight < 1:
            raise ParameterError(
                "max_tenant_inflight must be >= 1, got "
                f"{self.max_tenant_inflight}"
            )


class AdmissionController:
    """Tracks in-flight jobs and sheds over-limit submissions."""

    def __init__(self, policy: AdmissionPolicy | None = None):
        self.policy = policy or AdmissionPolicy()
        self._inflight: dict[str, int] = {}
        self._total = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_tenant_cap = 0

    @property
    def total_inflight(self) -> int:
        return self._total

    def tenant_inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def admit(self, tenant: str) -> None:
        """Reserve a slot for ``tenant`` or raise :class:`AdmissionError`."""
        if self._total >= self.policy.max_queue_depth:
            self.shed_queue_full += 1
            raise AdmissionError(
                f"job queue is full ({self._total} in flight, "
                f"limit {self.policy.max_queue_depth}); retry later"
            )
        held = self._inflight.get(tenant, 0)
        if held >= self.policy.max_tenant_inflight:
            self.shed_tenant_cap += 1
            raise AdmissionError(
                f"tenant {tenant!r} already has {held} jobs in flight "
                f"(limit {self.policy.max_tenant_inflight}); retry later"
            )
        self._inflight[tenant] = held + 1
        self._total += 1
        self.admitted += 1

    def release(self, tenant: str) -> None:
        """Return a slot when a job finishes (success or failure)."""
        held = self._inflight.get(tenant, 0)
        if held <= 0 or self._total <= 0:
            raise ServeError(
                f"release without matching admit for tenant {tenant!r}"
            )
        if held == 1:
            del self._inflight[tenant]
        else:
            self._inflight[tenant] = held - 1
        self._total -= 1

    def counters(self) -> dict[str, int]:
        """Current counter values, keyed for the metrics registry."""
        return {
            "serve.admission.admitted": self.admitted,
            "serve.admission.shed_queue_full": self.shed_queue_full,
            "serve.admission.shed_tenant_cap": self.shed_tenant_cap,
        }
