"""Attribution forensics: simulated downtime ledgers vs analytic importance.

The simulator's per-signal attribution ledgers (:mod:`repro.sim.measures`)
say which component's transition opened each outage episode of a fault
campaign.  If those ledgers are trustworthy, then on a *hazard-free*
campaign the components charged with the most downtime should be the ones
the analytic theory says matter most — exactly what Birnbaum importance
(``dA_sys/dA_i``) weighted by component unavailability (the *criticality*
``I_B(i) * q_i``, a component's expected contribution to system
unavailability) ranks.  This module runs that cross-check:

* :func:`infra_structure` — the infrastructure-level boolean structure of
  a plane (rack/host/vm element keys in the simulator's naming; processes
  treated as perfect), small enough for the exact ``2**n`` enumeration in
  :meth:`~repro.core.structure.StructureFunction.availability`;
* :func:`infra_importance` — exact Birnbaum / criticality /
  Fussell–Vesely importance of every infrastructure element, through
  :mod:`repro.core.importance`;
* :func:`crosscheck_attribution` — compares the simulated per-component
  downtime ranking of a campaign's ledger against the analytic
  criticality ranking and reports every *confident* analytic ordering
  (ratio above a margin) the simulation contradicts.

Only infrastructure components are compared: process/supervisor downtime
follows software parameters the infra structure deliberately excludes,
and the margin keeps Monte-Carlo noise from flagging near-ties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.cutsets import minimal_cut_sets
from repro.core.importance import birnbaum_importance, fussell_vesely
from repro.core.structure import StructureFunction
from repro.errors import ObservabilityError
from repro.sim.measures import SignalAttribution

__all__ = [
    "AttributionCrosscheck",
    "infra_structure",
    "infra_probabilities",
    "infra_importance",
    "crosscheck_attribution",
]

#: Signal name -> the plane whose quorum structure backs it.  ``ldp`` is
#: host-local (no shared infrastructure) and has no crosscheck target.
_SIGNAL_PLANES = {"cp": "cp", "sdp": "dp", "dp": "dp"}

_LEVEL_PREFIXES = ("rack:", "host:", "vm:")


def infra_structure(controller, topology, signal: str = "cp") -> StructureFunction:
    """The infrastructure-only boolean structure behind a plane signal.

    Element names are the simulator's component keys (``rack:R1``,
    ``host:H1``, ``vm:GCAD1``), so the structure's importance results join
    directly against attribution-ledger keys.  A role instance counts as
    up when its whole support chain (rack, host, VM) is up — processes are
    taken perfect — and the plane is up when every quorum unit of every
    cluster role is satisfied.
    """
    plane = _SIGNAL_PLANES.get(signal)
    if plane is None:
        raise ObservabilityError(
            f"no infrastructure structure for signal {signal!r}; "
            f"expected one of {sorted(_SIGNAL_PLANES)}"
        )
    units: list[tuple[int, list[tuple[str, str, str]]]] = []
    names: list[str] = []
    seen: set[str] = set()
    for role in controller.cluster_roles:
        chains: list[tuple[str, str, str]] = []
        for instance in topology.instances_of(role.name):
            rack, host, vm = topology.support_chain(instance)
            chain = (f"rack:{rack}", f"host:{host}", f"vm:{vm}")
            chains.append(chain)
            for key in chain:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        for unit in role.quorum_units(plane):
            units.append((unit.quorum, chains))
    if not units:
        raise ObservabilityError(
            f"controller has no quorum units on plane {plane!r}"
        )

    def fn(state: Mapping[str, bool]) -> bool:
        for quorum, chains in units:
            satisfied = 0
            for chain in chains:
                for key in chain:
                    if not state[key]:
                        break
                else:
                    satisfied += 1
                    if satisfied >= quorum:
                        break
            if satisfied < quorum:
                return False
        return True

    return StructureFunction(names, fn)


def infra_probabilities(topology, hardware) -> dict[str, float]:
    """Steady-state availability of every infrastructure element key."""
    probabilities: dict[str, float] = {}
    for rack in topology.racks:
        probabilities[f"rack:{rack.name}"] = hardware.a_rack
    for host in topology.hosts:
        probabilities[f"host:{host.name}"] = hardware.a_host
    for vm in topology.vms:
        probabilities[f"vm:{vm.name}"] = hardware.a_vm
    return probabilities


def infra_importance(
    controller, topology, hardware, signal: str = "cp", max_order: int = 3
) -> dict[str, dict[str, float]]:
    """Exact analytic importance of every infrastructure element.

    Returns per-element ``birnbaum`` (``A(1_i) - A(0_i)``), ``criticality``
    (Birnbaum weighted by the element's unavailability — its expected
    share of system downtime), and ``fussell_vesely`` (cut-set share, from
    minimal cut sets up to ``max_order``).
    """
    structure = infra_structure(controller, topology, signal)
    probabilities = infra_probabilities(topology, hardware)
    birnbaum = birnbaum_importance(structure, probabilities)
    criticality = {
        name: birnbaum[name] * (1.0 - probabilities[name])
        for name in structure.names
    }
    cut_sets = minimal_cut_sets(structure, max_order=max_order)
    unavailability = {
        name: 1.0 - probabilities[name] for name in structure.names
    }
    fv = fussell_vesely(cut_sets, unavailability)
    return {
        "birnbaum": birnbaum,
        "criticality": criticality,
        "fussell_vesely": {
            name: fv.get(name, 0.0) for name in structure.names
        },
    }


@dataclass(frozen=True)
class AttributionCrosscheck:
    """Outcome of one simulated-vs-analytic attribution comparison."""

    signal: str
    #: Analytic importance tables (birnbaum/criticality/fussell_vesely).
    importance: dict[str, dict[str, float]]
    #: Simulated downtime seconds per infrastructure element.
    simulated_seconds: dict[str, float]
    #: Confident analytic orderings the simulation contradicts, as
    #: ``(higher, lower)`` element pairs the ledger ranked the other way.
    violations: tuple[tuple[str, str], ...]
    #: The ratio margin above which an analytic ordering counts as
    #: confident (near-ties are never checked).
    min_ratio: float

    @property
    def agrees(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "signal": self.signal,
            "agrees": self.agrees,
            "min_ratio": self.min_ratio,
            "violations": [list(pair) for pair in self.violations],
            "importance": self.importance,
            "simulated_seconds": self.simulated_seconds,
        }


def _infra_only(seconds: Mapping[str, float]) -> dict[str, float]:
    return {
        key: value
        for key, value in seconds.items()
        if key.startswith(_LEVEL_PREFIXES)
    }


def crosscheck_attribution(
    ledger: SignalAttribution,
    controller,
    topology,
    hardware,
    signal: str | None = None,
    min_ratio: float = 2.0,
) -> AttributionCrosscheck:
    """Cross-check a hazard-free attribution ledger against the analytics.

    For every pair of infrastructure elements whose analytic criticality
    differs by at least ``min_ratio``, the simulated ledger must charge at
    least as much downtime to the more critical element; pairs inside the
    margin are Monte-Carlo near-ties and are not checked.  Elements the
    structure does not contain (and non-infrastructure causes) are
    ignored.  Meaningful only for hazard-free campaigns — hazards move
    downtime in ways the independent-failure analytics cannot see.
    """
    name = signal or ledger.name or "cp"
    importance = infra_importance(controller, topology, hardware, name)
    criticality = importance["criticality"]
    simulated = _infra_only(ledger.component_seconds())
    violations: list[tuple[str, str]] = []
    elements = sorted(
        criticality, key=lambda key: criticality[key], reverse=True
    )
    for i, higher in enumerate(elements):
        for lower in elements[i + 1:]:
            if criticality[lower] > 0.0:
                ratio = criticality[higher] / criticality[lower]
            else:
                ratio = math.inf if criticality[higher] > 0.0 else 1.0
            if ratio < min_ratio:
                continue  # near-tie: noise could flip it either way
            if simulated.get(higher, 0.0) < simulated.get(lower, 0.0):
                violations.append((higher, lower))
    return AttributionCrosscheck(
        signal=name,
        importance=importance,
        simulated_seconds=simulated,
        violations=tuple(violations),
        min_ratio=min_ratio,
    )
