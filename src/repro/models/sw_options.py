"""The paper's four SW-centric options: 1S, 2S, 1L, 2L.

Option naming (section VI): the digit is the supervisor scenario (1 = not
required, the optimistic upper bound; 2 = required, the realistic lower
bound) and the letter is the reference topology (S = Small, L = Large).
:func:`evaluate_option` returns every plane quantity the paper reports —
``A_CP``, ``A_SDP``, ``A_LDP``, ``A_DP`` — plus downtime conversions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.spec import ControllerSpec
from repro.errors import ModelError
from repro.models.dataplane import local_dp_availability
from repro.models.sw import cp_availability, shared_dp_availability
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.units import downtime_minutes_per_year

#: The four options analysed in the paper, in figure-legend order.
PAPER_OPTIONS: tuple[str, ...] = ("1S", "2S", "1L", "2L")


def parse_option(option: str) -> tuple[RestartScenario, str]:
    """``"2L"`` -> ``(RestartScenario.REQUIRED, "large")`` etc."""
    normalized = option.strip().upper()
    if len(normalized) != 2 or normalized[0] not in "12":
        raise ModelError(
            f"option must look like '1S', '2S', '1L', '2L', got {option!r}"
        )
    scenario = (
        RestartScenario.NOT_REQUIRED
        if normalized[0] == "1"
        else RestartScenario.REQUIRED
    )
    topologies = {"S": "small", "M": "medium", "L": "large"}
    if normalized[1] not in topologies:
        raise ModelError(
            f"option topology must be S, M, or L, got {option!r}"
        )
    return scenario, topologies[normalized[1]]


@dataclass(frozen=True)
class OptionResult:
    """All plane availabilities for one option."""

    option: str
    cp: float
    shared_dp: float
    local_dp: float
    dp: float

    @property
    def cp_downtime_minutes(self) -> float:
        """Annual SDN control-plane downtime in minutes."""
        return downtime_minutes_per_year(self.cp)

    @property
    def dp_downtime_minutes(self) -> float:
        """Annual per-host data-plane downtime in minutes."""
        return downtime_minutes_per_year(self.dp)


def evaluate_option(
    spec: ControllerSpec,
    option: str,
    hardware: HardwareParams,
    software: SoftwareParams,
) -> OptionResult:
    """Evaluate one of the paper's options end to end."""
    scenario, topology = parse_option(option)
    cp = cp_availability(spec, topology, hardware, software, scenario)
    shared = shared_dp_availability(spec, topology, hardware, software, scenario)
    local = local_dp_availability(spec, software, scenario)
    return OptionResult(
        option=option.strip().upper(),
        cp=cp,
        shared_dp=shared,
        local_dp=local,
        dp=shared * local,
    )


def evaluate_all_options(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    options: tuple[str, ...] = PAPER_OPTIONS,
) -> dict[str, OptionResult]:
    """Evaluate every option; the rows behind Figs. 4-5 at one sweep point."""
    return {
        option: evaluate_option(spec, option, hardware, software)
        for option in options
    }
