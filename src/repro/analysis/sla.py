"""SLA risk: the distribution of *annual* downtime, not just its mean.

The paper's downtime numbers are means; an operator signing an SLA cares
about the distribution — "what is the chance this year exceeds X minutes?"
With outages arriving (approximately) as a Poisson process at the cut-set
frequency and lasting exponential-mixture durations, annual downtime is a
compound Poisson sum.  This module provides:

* :func:`annual_downtime_samples` — Monte-Carlo samples of one year's
  downtime from an :class:`~repro.analysis.frequency.OutageProfile`
  (Poisson outage count, exponential durations with the profile's mean);
* :func:`exceedance_probability` — ``P(annual downtime > threshold)``;
* :func:`zero_downtime_probability` — ``P(no outage at all this year)``,
  the closed-form ``exp(-w * T)`` behind the paper's "no downtime for many
  years" remark.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.frequency import OutageProfile
from repro.errors import ParameterError
from repro.units import HOURS_PER_YEAR


def zero_downtime_probability(
    profile: OutageProfile, years: float = 1.0
) -> float:
    """``P(no outage in `years`)`` for Poisson outage arrivals."""
    if years < 0:
        raise ParameterError(f"years must be >= 0, got {years}")
    return math.exp(-profile.frequency_per_hour * HOURS_PER_YEAR * years)


def annual_downtime_samples(
    profile: OutageProfile,
    samples: int = 10_000,
    seed: int = 0,
) -> np.ndarray:
    """Monte-Carlo samples of one year's total downtime, in minutes.

    Outage counts are Poisson with the profile's annual frequency;
    durations are exponential with the profile's mean outage duration (a
    single-scale approximation of the true mixture — conservative for the
    tail when short outages dominate the count).
    """
    if samples < 1:
        raise ParameterError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    rate = profile.frequency_per_hour * HOURS_PER_YEAR
    mean_minutes = profile.mean_outage_hours * 60.0
    counts = rng.poisson(rate, size=samples)
    totals = np.zeros(samples)
    busy = counts > 0
    if mean_minutes > 0:
        totals[busy] = np.array(
            [
                rng.exponential(mean_minutes, size=count).sum()
                for count in counts[busy]
            ]
        )
    return totals


def exceedance_probability(
    profile: OutageProfile,
    threshold_minutes: float,
    samples: int = 10_000,
    seed: int = 0,
) -> float:
    """``P(annual downtime > threshold)`` by compound-Poisson Monte Carlo."""
    if threshold_minutes < 0:
        raise ParameterError(
            f"threshold must be >= 0, got {threshold_minutes}"
        )
    downtime = annual_downtime_samples(profile, samples=samples, seed=seed)
    return float(np.mean(downtime > threshold_minutes))
