"""Crossover detection in availability sweeps.

The paper's design guidance changes with process maturity ("as individual
process availability decreases ... the impact of rack separation becomes
less relevant, and the impact of the supervisor process becomes more
pronounced").  Taken together, those trends imply *crossovers*: e.g. below
a certain process maturity, the single-rack supervisor-independent option
1S outperforms the three-rack supervisor-dependent option 2L.  This module
locates such crossing points precisely:

* :func:`sweep_crossings` — bracketing scan over an existing sweep;
* :func:`refine_crossing` — bisection on a difference function to locate a
  crossing to tolerance.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.sweep import SweepResult
from repro.errors import ParameterError


def sweep_crossings(
    result: SweepResult, label_a: str, label_b: str
) -> list[tuple[float, float]]:
    """Grid intervals where two sweep series cross.

    Returns ``(x_left, x_right)`` brackets for every sign change of
    ``series_a - series_b``; exact ties at grid points count as crossings
    bracketed by their neighbours.
    """
    for label in (label_a, label_b):
        if label not in result.series:
            raise ParameterError(f"no series labelled {label!r}")
    a = result.series[label_a]
    b = result.series[label_b]
    brackets = []
    for i in range(len(result.grid) - 1):
        d0 = a[i] - b[i]
        d1 = a[i + 1] - b[i + 1]
        if d0 == 0.0 or (d0 < 0.0) != (d1 < 0.0):
            brackets.append((result.grid[i], result.grid[i + 1]))
    return brackets


def refine_crossing(
    difference: Callable[[float], float],
    lo: float,
    hi: float,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Bisect ``difference`` to find its root in ``[lo, hi]``.

    ``difference(lo)`` and ``difference(hi)`` must have opposite signs
    (or one of them be zero).
    """
    if not hi > lo:
        raise ParameterError(f"need hi > lo, got [{lo}, {hi}]")
    d_lo = difference(lo)
    d_hi = difference(hi)
    if d_lo == 0.0:
        return lo
    if d_hi == 0.0:
        return hi
    if (d_lo < 0.0) == (d_hi < 0.0):
        raise ParameterError(
            "difference has the same sign at both ends; no bracketed root"
        )
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        d_mid = difference(mid)
        if d_mid == 0.0 or hi - lo < tolerance:
            return mid
        if (d_mid < 0.0) == (d_lo < 0.0):
            lo, d_lo = mid, d_mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def option_crossover_orders(
    spec,
    hardware,
    software,
    option_a: str,
    option_b: str,
    lo: float = -1.0,
    hi: float = 1.0,
    plane: str = "cp",
    tolerance: float = 1e-4,
) -> float | None:
    """The sweep position where two options' plane availabilities cross.

    Returns the orders-of-magnitude x-coordinate (the Figs. 4-5 axis), or
    None when one option dominates throughout ``[lo, hi]``.
    """
    from repro.models.dataplane import dp_availability
    from repro.models.sw import cp_availability
    from repro.models.sw_options import parse_option

    def value(option: str, x: float) -> float:
        scenario, topology = parse_option(option)
        scaled = software.scaled(x)
        if plane == "cp":
            return cp_availability(spec, topology, hardware, scaled, scenario)
        return dp_availability(spec, topology, hardware, scaled, scenario)

    def difference(x: float) -> float:
        return value(option_a, x) - value(option_b, x)

    d_lo, d_hi = difference(lo), difference(hi)
    if d_lo != 0.0 and d_hi != 0.0 and (d_lo < 0.0) == (d_hi < 0.0):
        return None
    return refine_crossing(difference, lo, hi, tolerance=tolerance)
