"""A small metrics registry: counters, gauges, timing histograms.

Instruments in this codebase report three shapes of measurement:

* :class:`Counter` — monotonically increasing event counts (cache hits,
  Monte-Carlo samples, simulator events);
* :class:`Gauge` — last-value-wins observations (worker utilization,
  samples/second of the most recent run);
* :class:`TimingHistogram` — streaming summary of a duration distribution
  (per-chunk wall times, per-evaluator sweep timings) keeping count, sum,
  min, and max without storing samples, so observation cost is O(1) and
  the registry's footprint is independent of run length.

The registry is deliberately process-local and lock-free: instrumented
sections run either inline or in worker *processes* (which carry their own,
disabled, registry), never in racing threads.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "TimingHistogram",
    "MetricsRegistry",
    "HISTOGRAM_BUCKET_BOUNDS",
]

#: Fixed exponential bucket upper bounds (seconds) shared by every
#: :class:`TimingHistogram`.  Fixed bounds keep worker-side histograms
#: mergeable bin-for-bin and map directly onto Prometheus ``le`` labels;
#: the final implicit bucket is +Inf (overflow).
HISTOGRAM_BUCKET_BOUNDS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


class TimingHistogram:
    """Streaming summary statistics of observed durations.

    Keeps count, sum, min, max, and fixed exponential bucket counts
    (bounds in :data:`HISTOGRAM_BUCKET_BOUNDS` plus an overflow bucket).
    An empty histogram summarizes as ``{"count": 0}`` — mean/min/max are
    *absent*, never NaN, so JSON exports stay clean.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "bins")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.bins = [0] * (len(HISTOGRAM_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.bins[bisect_right(HISTOGRAM_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the fixed bucket counts.

        Linear interpolation inside the bucket containing the target rank
        (the standard Prometheus ``histogram_quantile`` estimate), clamped
        to the exactly-tracked ``[min, max]`` observed range so degenerate
        single-bucket histograms never extrapolate.  An empty histogram
        estimates ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0.0
        lower = 0.0
        for bound, bucket in zip(HISTOGRAM_BUCKET_BOUNDS, self.bins):
            if bucket:
                if cumulative + bucket >= rank:
                    fraction = (rank - cumulative) / bucket
                    value = lower + fraction * (bound - lower)
                    return min(max(value, self.minimum), self.maximum)
                cumulative += bucket
            lower = bound
        return self.maximum

    def summary(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "bins": list(self.bins),
        }

    def merge_summary(self, summary: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`summary` into this one."""
        count = int(summary.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(summary["total"])
        if summary["min"] < self.minimum:
            self.minimum = float(summary["min"])
        if summary["max"] > self.maximum:
            self.maximum = float(summary["max"])
        bins = summary.get("bins")
        if bins is not None:
            if len(bins) != len(self.bins):
                raise ValueError(
                    f"histogram {self.name!r}: cannot merge {len(bins)} bins "
                    f"into {len(self.bins)}"
                )
            for index, value in enumerate(bins):
                self.bins[index] += int(value)


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, TimingHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> TimingHistogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = TimingHistogram(name)
        return histogram

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable view of every metric, sorted by name."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in.

        Counters add, gauges are last-writer-wins (callers merge worker
        snapshots in chunk-index order, so "last" is deterministic), and
        histograms merge count/total/min/max and bucket bins elementwise.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).increment(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
