"""Dominant failure-mode identification — the section VI-G claims.

The paper names the dominant SW failure modes qualitatively ("one Database
supervisor failure and any Database process failure in another node ...");
this module derives them mechanically: build the process-level structure
function of a plane on a topology, enumerate minimal cut sets up to a given
order, and rank them by occurrence probability.

Component naming convention (stable, used by tests and benchmarks):

* ``rack:R1`` / ``host:H2`` / ``vm:GCAD1`` — infrastructure elements,
* ``sup:<Role>-<i>`` — a role's supervisor instance (scenario 2 only),
* ``proc:<Role>/<process>-<i>`` — a regular process instance,
* ``local:<process>`` and ``local:supervisor`` — the representative host's
  vRouter processes (data plane only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.controller.spec import ControllerSpec, Plane
from repro.core.cutsets import RankedCutSet, minimal_cut_sets, rank_cut_sets
from repro.core.structure import StructureFunction
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.topology.deployment import DeploymentTopology


@dataclass(frozen=True)
class PlaneStructure:
    """A plane's structure function plus per-component unavailabilities."""

    structure: StructureFunction
    unavailability: dict[str, float]


def build_plane_structure(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    plane: Plane,
    include_local: bool = True,
) -> PlaneStructure:
    """Process-level structure function of one plane on one topology.

    The system is up when every cluster role's every quorum unit has at
    least its quorum of instances whose full support chain is up — the
    infrastructure chain, the supervisor (scenario 2), and every member
    process — and, for the data plane with ``include_local``, when the
    representative host's vRouter processes are up.
    """
    amap = software.availability_map()
    unavailability: dict[str, float] = {}
    # Infrastructure components.
    for rack in topology.racks:
        unavailability[f"rack:{rack.name}"] = 1.0 - hardware.a_rack
    for host in topology.hosts:
        unavailability[f"host:{host.name}"] = 1.0 - hardware.a_host
    for vm in topology.vms:
        unavailability[f"vm:{vm.name}"] = 1.0 - hardware.a_vm

    # Per-role requirements: (unit label, quorum, member procs), instances.
    role_requirements: list[tuple[str, list[tuple[str, int, list[str]]]]] = []
    for role in spec.cluster_roles:
        units = role.quorum_units(plane.value)
        if not units:
            continue
        instances = topology.instances_of(role.name)
        unit_rows = []
        for unit in units:
            member_names = [p.name for p in unit.members]
            unit_rows.append((unit.label, unit.quorum, member_names))
            for instance in instances:
                for member in unit.members:
                    key = f"proc:{role.name}/{member.name}-{instance.index}"
                    unavailability[key] = 1.0 - amap[member.restart]
        if scenario is RestartScenario.REQUIRED and role.supervisor is not None:
            for instance in instances:
                unavailability[f"sup:{role.name}-{instance.index}"] = (
                    1.0 - software.a_unsupervised
                )
        role_requirements.append((role.name, unit_rows))

    host_role = spec.host_role
    local_components: list[str] = []
    if plane is Plane.DP and include_local and host_role is not None:
        for unit in host_role.quorum_units(Plane.DP.value):
            for member in unit.members:
                key = f"local:{member.name}"
                unavailability[key] = 1.0 - amap[member.restart]
                local_components.append(key)
        if scenario is RestartScenario.REQUIRED and host_role.supervisor is not None:
            unavailability["local:supervisor"] = 1.0 - software.a_unsupervised
            local_components.append("local:supervisor")

    chains = {
        (i.role, i.index): topology.support_chain(i) for i in topology.instances
    }

    def plane_up(state: Mapping[str, bool]) -> bool:
        def up(key: str) -> bool:
            return state.get(key, True)

        def infra_up(role: str, index: int) -> bool:
            rack, host, vm = chains[(role, index)]
            return up(f"rack:{rack}") and up(f"host:{host}") and up(f"vm:{vm}")

        for role_name, unit_rows in role_requirements:
            instances = topology.instances_of(role_name)
            for _, quorum, member_names in unit_rows:
                satisfied = 0
                for instance in instances:
                    if not infra_up(role_name, instance.index):
                        continue
                    if scenario is RestartScenario.REQUIRED and not up(
                        f"sup:{role_name}-{instance.index}"
                    ):
                        continue
                    if all(
                        up(f"proc:{role_name}/{name}-{instance.index}")
                        for name in member_names
                    ):
                        satisfied += 1
                if satisfied < quorum:
                    return False
        return all(up(component) for component in local_components)

    names = tuple(sorted(unavailability))
    return PlaneStructure(StructureFunction(names, plane_up), unavailability)


def dominant_failure_modes(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    plane: Plane,
    max_order: int = 2,
    top: int = 10,
) -> list[RankedCutSet]:
    """The ``top`` most probable minimal cut sets up to ``max_order``.

    With the paper's defaults this mechanically reproduces the section VI-G
    narratives (Database double-process cuts for 1S, supervisor+process cuts
    for 2S, vRouter single-process cuts for the DP).
    """
    built = build_plane_structure(
        spec, topology, hardware, software, scenario, plane
    )
    cut_sets = minimal_cut_sets(built.structure, max_order=max_order)
    ranked = rank_cut_sets(cut_sets, built.unavailability)
    return ranked[:top]
