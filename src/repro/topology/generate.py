"""Parametric topology generation.

The paper's Small/Medium/Large are three points in a two-dimensional
design space: *how many racks* the nodes spread over, and whether roles
share combined node VMs or get their own VM+host.  These generators cover
the whole space so the design-search tooling can sweep it:

* :func:`combined_nodes_topology` — one combined (GCAD-style) VM per node,
  one host per node, nodes round-robin over ``racks_used`` racks.
  ``racks_used=1`` is the paper's Small; ``racks_used=3`` is the
  CrossRackSmall layout of :mod:`repro.topology.custom`.
* :func:`separated_topology` — every role copy in its own VM on its own
  host, node hosts round-robin over ``racks_used`` racks.
  ``racks_used=cluster_size`` is the paper's Large.
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.spec import ControllerSpec
from repro.errors import TopologyError
from repro.topology.deployment import DeploymentTopology
from repro.topology.elements import Host, Rack, RoleInstance, Vm
from repro.topology.reference import _cluster_size, _role_names


def _validate_racks(racks_used: int, cluster_size: int) -> None:
    if not 1 <= racks_used <= cluster_size:
        raise TopologyError(
            f"racks_used must be in [1, {cluster_size}], got {racks_used}"
        )


def combined_nodes_topology(
    spec_or_roles: ControllerSpec | Sequence[str],
    racks_used: int,
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """Combined node VMs on per-node hosts, spread over ``racks_used`` racks."""
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    _validate_racks(racks_used, n)
    racks = tuple(Rack(f"R{i}") for i in range(1, racks_used + 1))
    hosts = tuple(
        Host(f"H{i}", f"R{(i - 1) % racks_used + 1}") for i in range(1, n + 1)
    )
    vms = tuple(Vm(f"GCAD{i}", f"H{i}") for i in range(1, n + 1))
    instances = tuple(
        RoleInstance(role, i, f"GCAD{i}")
        for i in range(1, n + 1)
        for role in roles
    )
    return DeploymentTopology(
        f"Combined-{racks_used}R", racks, hosts, vms, instances
    )


def separated_topology(
    spec_or_roles: ControllerSpec | Sequence[str],
    racks_used: int,
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """Per-role VMs and hosts, node hosts spread over ``racks_used`` racks."""
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    _validate_racks(racks_used, n)
    racks = tuple(Rack(f"R{i}") for i in range(1, racks_used + 1))
    hosts = []
    vms = []
    instances = []
    host_number = 0
    for i in range(1, n + 1):
        rack = f"R{(i - 1) % racks_used + 1}"
        for role in roles:
            host_number += 1
            host = Host(f"H{host_number}", rack)
            hosts.append(host)
            vm = Vm(f"{role}{i}", host.name)
            vms.append(vm)
            instances.append(RoleInstance(role, i, vm.name))
    return DeploymentTopology(
        f"Separated-{racks_used}R", racks, tuple(hosts), tuple(vms), instances
    )
