"""Series generators for the paper's figures.

Each function returns the exact data series behind one figure:

* :func:`fig3_series` — Fig. 3: HW-centric controller availability versus
  role availability ``A_C in [0.999, 1.0]`` for the Small, Medium, and
  Large topologies.
* :func:`fig4_series` — Fig. 4: SW-centric SDN control-plane availability
  ``A_CP`` versus process availability for options 1S/2S/1L/2L.
* :func:`fig5_series` — Fig. 5: per-host data-plane availability ``A_DP``
  for the same options.

The Figs. 4-5 x-axis follows the paper: orders of magnitude of downtime
around the defaults (``x = 0`` is ``A = 0.99998``/``A_S = 0.9998``;
``x = -1`` is 10x more downtime; ``x = +1`` is 10x less), with ``A`` and
``A_S`` varied in lock-step.
"""

from __future__ import annotations

from repro.analysis.sweep import SweepResult, grid, sweep
from repro.controller.spec import ControllerSpec
from repro.models.dataplane import dp_availability
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.models.sw import cp_availability
from repro.models.sw_options import PAPER_OPTIONS, parse_option
from repro.params.defaults import FIG3_ROLE_AVAILABILITY_RANGE
from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams


def fig3_series(
    hardware: HardwareParams,
    points: int = 41,
    role_range: tuple[float, float] = FIG3_ROLE_AVAILABILITY_RANGE,
) -> SweepResult:
    """Fig. 3: cluster availability vs role availability, three topologies."""
    values = grid(role_range[0], role_range[1], points)
    return sweep(
        "A_C",
        values,
        {
            "Small": lambda a: hw_small(hardware.with_role_availability(a)),
            "Medium": lambda a: hw_medium(hardware.with_role_availability(a)),
            "Large": lambda a: hw_large(hardware.with_role_availability(a)),
        },
    )


def _option_series(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    points: int,
    orders_range: tuple[float, float],
    plane: str,
    options: tuple[str, ...],
) -> SweepResult:
    values = grid(orders_range[0], orders_range[1], points)

    def make(option: str):
        scenario, topology = parse_option(option)

        def evaluate(x: float) -> float:
            scaled = software.scaled(x)
            if plane == "cp":
                return cp_availability(
                    spec, topology, hardware, scaled, scenario
                )
            return dp_availability(spec, topology, hardware, scaled, scenario)

        return evaluate

    return sweep(
        "orders_of_magnitude",
        values,
        {option: make(option) for option in options},
    )


def fig4_series(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    points: int = 21,
    orders_range: tuple[float, float] = (-1.0, 1.0),
    options: tuple[str, ...] = PAPER_OPTIONS,
) -> SweepResult:
    """Fig. 4: SDN CP availability vs process availability, four options."""
    return _option_series(
        spec, hardware, software, points, orders_range, "cp", options
    )


def fig5_series(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    points: int = 21,
    orders_range: tuple[float, float] = (-1.0, 1.0),
    options: tuple[str, ...] = PAPER_OPTIONS,
) -> SweepResult:
    """Fig. 5: per-host DP availability vs process availability, four options."""
    return _option_series(
        spec, hardware, software, points, orders_range, "dp", options
    )
