"""Composable hazard models for fault-injection campaigns.

The analytic layers assume statistically independent component failures and
unlimited repair capacity.  Each hazard here breaks exactly one of those
assumptions on top of the unmodified simulator:

* :class:`CommonCauseSpec` — the classic **beta factor** model: a fraction
  ``beta`` of a group's failure intensity is moved from independent member
  failures into a shared Poisson process that fails the *whole group* at
  once.  ``beta = 0`` leaves the simulation bit-identical to the baseline
  (member rates are multiplied by exactly 1.0 and no common-cause stream is
  ever drawn), which is the degenerate-campaign invariant the
  cross-validation suite asserts.
* :class:`RackPowerSpec` — correlated rack power events: a Poisson process
  per rack that power-cycles the rack *and* every host/VM beneath it, each
  of which then needs its own repair (and competes for repair crews).
* :class:`MaintenanceSpec` — deterministic periodic maintenance windows: the
  target group is forced down (``hold`` semantics — a pending stochastic
  repair is cancelled, the component stays down for the full window) and
  restored at the window's end.
* :class:`RepairCrewsSpec` — a limited-repair-crew policy: at most ``crews``
  repairs run concurrently; further failures queue FIFO (deterministic
  tie-breaking via the simulator's event ordering) and their repair time is
  sampled when a crew picks them up, so queueing delay *adds to* repair
  time.
* :class:`LinkFlapSpec` — short fixed-duration outages (flaps) on each
  member of a group, independently Poisson-arriving per member: the member
  is held down for ``down_hours`` and then force-repaired, modeling port
  resets / protection-switch glitches whose duration is deterministic
  rather than exponential.  Built for :mod:`repro.network` link components
  but valid for any group selector.
* :class:`SrgFailureSpec` — a single Poisson process that fails *every*
  member of a group at one instant (each repairs through the normal
  machinery): the shared-risk-group conduit cut of the Nencioni backbone
  study, and a generic correlated-failure hammer for any group.

Specs are frozen, JSON-serializable value objects (``to_dict`` /
:func:`hazard_from_dict`); the runtime side — :func:`attach_hazards` —
binds them to a built :class:`~repro.sim.engine.AvailabilitySimulator`
before the run starts.  All randomness flows through the simulator's own
named RNG streams, so a campaign replication remains a pure function of its
seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Mapping

from repro.errors import CampaignError
from repro.obs import runtime as obs
from repro.sim.engine import AvailabilitySimulator, RepairController
from repro.sim.entities import ComponentKind

__all__ = [
    "CommonCauseSpec",
    "RackPowerSpec",
    "MaintenanceSpec",
    "RepairCrewsSpec",
    "LinkFlapSpec",
    "SrgFailureSpec",
    "HazardSpec",
    "hazard_from_dict",
    "RepairCrews",
    "HazardSet",
    "attach_hazards",
]

_INFRA_KINDS = (ComponentKind.RACK, ComponentKind.HOST, ComponentKind.VM)


@dataclass(frozen=True)
class CommonCauseSpec:
    """Beta-factor common-cause failures over one component group.

    Attributes:
        group: a group selector in the
            :meth:`~repro.sim.engine.AvailabilitySimulator.resolve_group`
            grammar (``"kind:vm"``, ``"role:Database"``, ``"rack:R1/*"``).
        beta: fraction of the group's mean failure intensity redirected
            into the shared cause.  Member intrinsic rates are scaled by
            ``1 - beta``; the common cause fires as a Poisson process with
            rate ``beta * mean(member rates)`` and fails every member at
            one instant (each then repairs through the normal machinery).
    """

    kind: ClassVar[str] = "common_cause"

    group: str
    beta: float

    def __post_init__(self) -> None:
        if not self.group:
            raise CampaignError("common-cause group selector must be non-empty")
        if not 0.0 <= self.beta <= 1.0:
            raise CampaignError(
                f"beta must be in [0, 1], got {self.beta}"
            )


@dataclass(frozen=True)
class RackPowerSpec:
    """Correlated rack power events.

    Each targeted rack gets an independent Poisson process with mean
    inter-event time ``mtbf_hours``; an event power-cycles the rack and all
    infrastructure beneath it (hosts and VMs enter repair simultaneously —
    processes are masked but do not themselves need repair).

    Attributes:
        mtbf_hours: mean hours between power events per rack.
        racks: rack component keys (``"rack:R1"``); empty means every rack.
    """

    kind: ClassVar[str] = "rack_power"

    mtbf_hours: float
    racks: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", tuple(self.racks))
        if self.mtbf_hours <= 0.0:
            raise CampaignError(
                f"rack-power mtbf_hours must be > 0, got {self.mtbf_hours}"
            )


@dataclass(frozen=True)
class MaintenanceSpec:
    """Deterministic periodic maintenance windows over one group.

    Starting at ``start_hours`` and repeating every ``period_hours``, the
    target group is held down for ``duration_hours`` (pending stochastic
    repairs are cancelled, so a window cannot be cut short) and restored at
    the window's end through the normal repair path (supervisor hooks run).
    """

    kind: ClassVar[str] = "maintenance"

    target: str
    start_hours: float
    period_hours: float
    duration_hours: float

    def __post_init__(self) -> None:
        if not self.target:
            raise CampaignError("maintenance target selector must be non-empty")
        if self.start_hours < 0.0:
            raise CampaignError(
                f"maintenance start_hours must be >= 0, got {self.start_hours}"
            )
        if self.duration_hours <= 0.0:
            raise CampaignError(
                "maintenance duration_hours must be > 0, got "
                f"{self.duration_hours}"
            )
        if self.period_hours <= self.duration_hours:
            raise CampaignError(
                f"maintenance period_hours ({self.period_hours}) must exceed "
                f"duration_hours ({self.duration_hours})"
            )

    @property
    def duty_fraction(self) -> float:
        """Long-run fraction of time the window is open."""
        return self.duration_hours / self.period_hours


@dataclass(frozen=True)
class RepairCrewsSpec:
    """Limit concurrent repairs to a fixed crew count (FIFO queueing)."""

    kind: ClassVar[str] = "repair_crews"

    crews: int

    def __post_init__(self) -> None:
        if self.crews < 1:
            raise CampaignError(f"crews must be >= 1, got {self.crews}")


@dataclass(frozen=True)
class LinkFlapSpec:
    """Deterministic-duration flaps on each member of a group.

    Each member of ``group`` gets an independent Poisson arrival process
    with mean inter-flap time ``mtbf_hours``; a flap holds the member down
    (``hold`` semantics — a pending stochastic repair is cancelled) for
    exactly ``down_hours``, then force-repairs it.  The next arrival is
    drawn when the flap ends, so per-member flap windows never overlap and
    the long-run flap duty fraction is ``down / (down + mtbf)``.

    Named for :mod:`repro.network` link components (``group`` =
    ``"kind:link"`` or an explicit link key) but valid for any selector in
    the :meth:`~repro.sim.engine.AvailabilitySimulator.resolve_group`
    grammar — a flapping VM is just a very fast maintenance window.
    """

    kind: ClassVar[str] = "link_flap"

    group: str
    mtbf_hours: float
    down_hours: float = 0.1

    def __post_init__(self) -> None:
        if not self.group:
            raise CampaignError("link-flap group selector must be non-empty")
        if self.mtbf_hours <= 0.0:
            raise CampaignError(
                f"link-flap mtbf_hours must be > 0, got {self.mtbf_hours}"
            )
        if self.down_hours <= 0.0:
            raise CampaignError(
                f"link-flap down_hours must be > 0, got {self.down_hours}"
            )

    @property
    def duty_fraction(self) -> float:
        """Long-run fraction of time a member spends flapped down."""
        return self.down_hours / (self.down_hours + self.mtbf_hours)


@dataclass(frozen=True)
class SrgFailureSpec:
    """Correlated whole-group failures: one Poisson process fails all members.

    The shared-risk-group event of the Nencioni backbone model — a conduit
    cut takes every fiber in the duct at one instant; each member then
    repairs through the normal machinery (competing for repair crews if
    limited).  ``group`` accepts any selector, so ``"SRG-HAUL/*"`` (an SRG
    component plus its dependent links) and ``"kind:host"`` are equally
    valid targets.
    """

    kind: ClassVar[str] = "srg_failure"

    group: str
    mtbf_hours: float

    def __post_init__(self) -> None:
        if not self.group:
            raise CampaignError("srg-failure group selector must be non-empty")
        if self.mtbf_hours <= 0.0:
            raise CampaignError(
                f"srg-failure mtbf_hours must be > 0, got {self.mtbf_hours}"
            )


HazardSpec = (
    CommonCauseSpec
    | RackPowerSpec
    | MaintenanceSpec
    | RepairCrewsSpec
    | LinkFlapSpec
    | SrgFailureSpec
)

_SPEC_TYPES: dict[str, type] = {
    spec_type.kind: spec_type
    for spec_type in (
        CommonCauseSpec,
        RackPowerSpec,
        MaintenanceSpec,
        RepairCrewsSpec,
        LinkFlapSpec,
        SrgFailureSpec,
    )
}


def hazard_to_dict(spec: HazardSpec) -> dict[str, Any]:
    """A JSON-serializable record of one hazard spec (``kind`` included)."""
    record: dict[str, Any] = {"kind": spec.kind}
    for field in fields(spec):
        value = getattr(spec, field.name)
        record[field.name] = list(value) if isinstance(value, tuple) else value
    return record


def hazard_from_dict(record: Mapping[str, Any]) -> HazardSpec:
    """Rebuild a hazard spec from its :func:`hazard_to_dict` record."""
    data = dict(record)
    kind = data.pop("kind", None)
    try:
        spec_type = _SPEC_TYPES[kind]
    except KeyError:
        raise CampaignError(
            f"unknown hazard kind {kind!r}; expected one of "
            f"{sorted(_SPEC_TYPES)}"
        ) from None
    names = {field.name for field in fields(spec_type)}
    unknown = set(data) - names
    if unknown:
        raise CampaignError(
            f"unknown field(s) {sorted(unknown)} for hazard kind {kind!r}"
        )
    try:
        return spec_type(**data)
    except TypeError as error:
        raise CampaignError(f"invalid {kind!r} hazard: {error}") from None


# -- runtime side ------------------------------------------------------------------


class RepairCrews(RepairController):
    """At most ``crews`` concurrent repairs; excess failures queue FIFO.

    Queue order is the order in which repair requests reached the
    controller, which the simulator's event queue already makes
    deterministic (FIFO tie-breaking at equal times).  A queued
    component's repair time is sampled when a crew frees up
    (:meth:`~repro.sim.engine.AvailabilitySimulator.begin_repair`), so
    waiting and repairing never overlap.
    """

    def __init__(self, crews: int):
        if crews < 1:
            raise CampaignError(f"crews must be >= 1, got {crews}")
        self.crews = crews
        self._active: list[str] = []
        self._queue: deque[str] = deque()
        #: Peak number of simultaneously queued repairs.
        self.max_queue_depth = 0
        #: How many repair requests had to wait for a crew.
        self.total_queued = 0

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def active_repairs(self) -> int:
        return len(self._active)

    def request(
        self, simulator: AvailabilitySimulator, component
    ) -> bool:
        if len(self._active) < self.crews:
            self._active.append(component.key)
            return True
        self._queue.append(component.key)
        self.total_queued += 1
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        obs.gauge("faults.repair_queue.depth", len(self._queue))
        return False

    def release(
        self, simulator: AvailabilitySimulator, component
    ) -> None:
        key = component.key
        if key in self._active:
            self._active.remove(key)
            if self._queue:
                head = self._queue.popleft()
                self._active.append(head)
                simulator.begin_repair(head)
                obs.gauge("faults.repair_queue.depth", len(self._queue))
        elif key in self._queue:
            self._queue.remove(key)
            obs.gauge("faults.repair_queue.depth", len(self._queue))


class _HazardProcess:
    """Base runtime hazard: counts its injections for campaign statistics."""

    def __init__(self, spec: HazardSpec):
        self.spec = spec
        self.injections = 0

    def _record(self) -> None:
        # Counted locally and aggregated by the campaign runner (workers
        # carry a disabled obs runtime, so counting here would diverge
        # between inline and pooled execution).
        self.injections += 1


class _CommonCause(_HazardProcess):
    def __init__(
        self, simulator: AvailabilitySimulator, spec: CommonCauseSpec,
        index: int,
    ):
        super().__init__(spec)
        self._simulator = simulator
        self._keys = simulator.resolve_group(spec.group)
        rates = [
            simulator.components[key].failure_rate for key in self._keys
        ]
        self._rate = spec.beta * (sum(rates) / len(rates))
        self._stream = f"hazard:{index}:ccf:{spec.group}"
        if spec.beta > 0.0:
            for key in self._keys:
                simulator.components[key].failure_rate *= 1.0 - spec.beta
            if self._rate > 0.0:
                self._schedule()

    def _schedule(self) -> None:
        delay = self._simulator.draw_exponential(
            self._stream, 1.0 / self._rate
        )
        self._simulator.schedule_action(
            self._simulator.now + delay, self._fire
        )

    def _fire(self) -> None:
        self._record()
        self._simulator.fail_group(
            self._keys, repair=True, source="common_cause"
        )
        self._schedule()


class _RackPower(_HazardProcess):
    def __init__(
        self, simulator: AvailabilitySimulator, spec: RackPowerSpec,
        index: int,
    ):
        super().__init__(spec)
        self._simulator = simulator
        racks = spec.racks or simulator.resolve_group("kind:rack")
        self._groups: list[tuple[str, tuple[str, ...]]] = []
        for rack in racks:
            if simulator.components[rack].kind is not ComponentKind.RACK:
                raise CampaignError(
                    f"rack-power target {rack!r} is not a rack"
                )
            keys = tuple(
                key
                for key in simulator.resolve_group(f"{rack}/*")
                if simulator.components[key].kind in _INFRA_KINDS
            )
            stream = f"hazard:{index}:rackpower:{rack}"
            self._groups.append((stream, keys))
            self._schedule(stream, keys)

    def _schedule(self, stream: str, keys: tuple[str, ...]) -> None:
        delay = self._simulator.draw_exponential(
            stream, self.spec.mtbf_hours
        )
        self._simulator.schedule_action(
            self._simulator.now + delay,
            lambda: self._fire(stream, keys),
        )

    def _fire(self, stream: str, keys: tuple[str, ...]) -> None:
        self._record()
        self._simulator.fail_group(keys, repair=True, source="rack_power")
        self._schedule(stream, keys)


class _Maintenance(_HazardProcess):
    def __init__(
        self, simulator: AvailabilitySimulator, spec: MaintenanceSpec,
        index: int,
    ):
        super().__init__(spec)
        self._simulator = simulator
        self._keys = simulator.resolve_group(spec.target)
        simulator.schedule_action(spec.start_hours, self._open)

    def _open(self) -> None:
        self._record()
        window_start = self._simulator.now
        self._simulator.fail_group(
            self._keys, repair=False, hold=True, source="maintenance"
        )
        self._simulator.schedule_action(
            window_start + self.spec.duration_hours, self._close
        )
        self._simulator.schedule_action(
            window_start + self.spec.period_hours, self._open
        )

    def _close(self) -> None:
        self._simulator.repair_group(self._keys)


class _LinkFlap(_HazardProcess):
    def __init__(
        self, simulator: AvailabilitySimulator, spec: LinkFlapSpec,
        index: int,
    ):
        super().__init__(spec)
        self._simulator = simulator
        keys = simulator.resolve_group(spec.group)
        self._streams = {
            key: f"hazard:{index}:flap:{key}" for key in keys
        }
        for key in keys:
            self._schedule(key)

    def _schedule(self, key: str) -> None:
        delay = self._simulator.draw_exponential(
            self._streams[key], self.spec.mtbf_hours
        )
        self._simulator.schedule_action(
            self._simulator.now + delay, lambda: self._fire(key)
        )

    def _fire(self, key: str) -> None:
        self._record()
        self._simulator.force_fail(
            key, repair=False, hold=True, source="link_flap"
        )
        self._simulator.schedule_action(
            self._simulator.now + self.spec.down_hours,
            lambda: self._close(key),
        )

    def _close(self, key: str) -> None:
        self._simulator.repair_group([key])
        # Next arrival counts from the end of the flap, so windows on one
        # member never overlap.
        self._schedule(key)


class _SrgFailure(_HazardProcess):
    def __init__(
        self, simulator: AvailabilitySimulator, spec: SrgFailureSpec,
        index: int,
    ):
        super().__init__(spec)
        self._simulator = simulator
        self._keys = simulator.resolve_group(spec.group)
        self._stream = f"hazard:{index}:srg:{spec.group}"
        self._schedule()

    def _schedule(self) -> None:
        delay = self._simulator.draw_exponential(
            self._stream, self.spec.mtbf_hours
        )
        self._simulator.schedule_action(
            self._simulator.now + delay, self._fire
        )

    def _fire(self) -> None:
        self._record()
        self._simulator.fail_group(
            self._keys, repair=True, source="srg_failure"
        )
        self._schedule()


_PROCESS_TYPES: dict[str, type] = {
    CommonCauseSpec.kind: _CommonCause,
    RackPowerSpec.kind: _RackPower,
    MaintenanceSpec.kind: _Maintenance,
    LinkFlapSpec.kind: _LinkFlap,
    SrgFailureSpec.kind: _SrgFailure,
}


@dataclass
class HazardSet:
    """The runtime hazards attached to one simulator."""

    processes: list[_HazardProcess]
    controller: RepairCrews | None

    def stats(self) -> dict[str, Any]:
        """Per-replication campaign statistics (rides back from workers)."""
        injections: dict[str, int] = {}
        for process in self.processes:
            injections[process.spec.kind] = (
                injections.get(process.spec.kind, 0) + process.injections
            )
        return {
            "injections": injections,
            "repair_max_queue_depth": (
                self.controller.max_queue_depth if self.controller else 0
            ),
            "repair_total_queued": (
                self.controller.total_queued if self.controller else 0
            ),
        }


def attach_hazards(
    simulator: AvailabilitySimulator,
    hazards: tuple[HazardSpec, ...],
    crews: int | None = None,
) -> HazardSet:
    """Bind hazard specs (and an optional crew limit) to a built simulator.

    Must run before :meth:`~repro.sim.engine.AvailabilitySimulator.run`:
    common-cause hazards rescale member failure rates, and hazard RNG
    streams are spawned here in spec order, which keeps the whole run a
    pure function of the root seed.  A :class:`RepairCrewsSpec` in
    ``hazards`` and the ``crews`` argument are alternative spellings; the
    explicit argument wins.
    """
    controller: RepairCrews | None = None
    processes: list[_HazardProcess] = []
    for index, spec in enumerate(hazards):
        if isinstance(spec, RepairCrewsSpec):
            if crews is None:
                controller = RepairCrews(spec.crews)
            continue
        try:
            process_type = _PROCESS_TYPES[spec.kind]
        except (KeyError, AttributeError):
            raise CampaignError(
                f"cannot attach hazard {spec!r}: unknown kind"
            ) from None
        processes.append(process_type(simulator, spec, index))
    if crews is not None:
        controller = RepairCrews(crews)
    if controller is not None:
        simulator.set_repair_controller(controller)
    return HazardSet(processes=processes, controller=controller)
