"""Reproducible random-number streams.

Each simulated component draws from its own numpy Generator, spawned from a
single root seed via ``SeedSequence``; runs are bit-reproducible for a given
seed and component set, and independent across components regardless of the
event interleaving.

:func:`derive_seeds` extends the same discipline across *runs*: independent
replications (and parallel workers) get child seeds spawned from one root
``SeedSequence``, so a replication's stream depends only on ``(root seed,
replication index)`` — never on how the replications are scheduled.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class RngStreams:
    """A family of named, independent random streams under one root seed."""

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator dedicated to ``name`` (created on first use).

        Streams are spawned in first-use order, so a run is reproducible as
        long as components are registered in a deterministic order.
        """
        if name not in self._streams:
            child = self._root.spawn(1)[0]
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean from ``name``'s stream."""
        if mean <= 0:
            raise SimulationError(
                f"exponential mean must be > 0, got {mean} for {name!r}"
            )
        return float(self.stream(name).exponential(mean))


def derive_seeds(seed: int, count: int) -> tuple[int, ...]:
    """``count`` independent integer child seeds of a root ``seed``.

    Children are spawned with ``np.random.SeedSequence.spawn``, so child
    ``i`` is a pure function of ``(seed, i)``: the derivation is identical
    no matter how many workers later consume the seeds, which is what makes
    parallel replication runs bit-identical to sequential ones.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return tuple(
        int(child.generate_state(2, np.uint64)[0]) for child in children
    )
