"""The paper's HW-centric approximations.

Section V (and the conclusion) derives intuitive rules of thumb:

* Small/Medium (quorum exposed to one rack):
  ``A ~= A_{2/3}(alpha) A_R`` with ``alpha = A_C A_V A_H`` — a 2-of-3 block
  of ``{role+VM+host}`` elements in series with the quorum rack.
* Large (quorum spread over three racks):
  ``A ~= A_{2/3}(alpha)`` with ``alpha = A_C A_V A_H A_R`` — the rack joins
  the per-node series chain.

The conclusion restates these as ``A ~= alpha²(3-2alpha) A_R`` and
``A ~= alpha²(3-2alpha)`` (the expanded 2-of-3 polynomial).
"""

from __future__ import annotations

from repro.core.kofn import a_m_of_n
from repro.errors import ModelError
from repro.params.hardware import HardwareParams


def hw_approx_small(params: HardwareParams) -> float:
    """``A_S ~= A_{2/3}(A_C A_V A_H) A_R``."""
    alpha = params.a_role * params.a_vm * params.a_host
    return a_m_of_n(2, 3, alpha) * params.a_rack


def hw_approx_medium(params: HardwareParams) -> float:
    """``A_M ~= A_{2/3}(A_C A_V A_H) A_R`` — same approximation as Small.

    The paper: "it can be shown that A_M ~= A_{2/3} A_R ~= A_S"; the other
    1-of-3 {role+VM} elements have only second-order effects.
    """
    return hw_approx_small(params)


def hw_approx_large(params: HardwareParams) -> float:
    """``A_L ~= A_{2/3}(A_C A_V A_H A_R)``."""
    alpha = params.a_role * params.a_vm * params.a_host * params.a_rack
    return a_m_of_n(2, 3, alpha)


def two_of_three_polynomial(alpha: float) -> float:
    """The conclusion's expanded form: ``alpha²(3 - 2 alpha) = A_{2/3}(alpha)``."""
    return alpha * alpha * (3.0 - 2.0 * alpha)


_DISPATCH = {
    "small": hw_approx_small,
    "medium": hw_approx_medium,
    "large": hw_approx_large,
}


def hw_approximation(topology_name: str, params: HardwareParams) -> float:
    """The paper's rule-of-thumb availability by reference topology name."""
    try:
        approx = _DISPATCH[topology_name.lower()]
    except KeyError:
        raise ModelError(
            f"no approximation for topology {topology_name!r}; expected one "
            f"of {sorted(_DISPATCH)}"
        ) from None
    return approx(params)
