"""Physical and virtual deployment elements.

A deployment is a three-level containment hierarchy — racks contain hosts,
hosts run VMs — plus a placement of controller *role instances* onto VMs.
Names are the identities: two elements with the same name are the same
element.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError


@dataclass(frozen=True, order=True)
class Rack:
    """A rack — the largest shared failure domain the paper models."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("rack name must be non-empty")


@dataclass(frozen=True, order=True)
class Host:
    """A physical server, including its host OS and hypervisor."""

    name: str
    rack: str

    def __post_init__(self) -> None:
        if not self.name or not self.rack:
            raise TopologyError("host name and rack must be non-empty")


@dataclass(frozen=True, order=True)
class Vm:
    """A virtual machine (including guest OS) pinned to one host."""

    name: str
    host: str

    def __post_init__(self) -> None:
        if not self.name or not self.host:
            raise TopologyError("VM name and host must be non-empty")


@dataclass(frozen=True, order=True)
class RoleInstance:
    """One copy of a controller role: ``(role, index)`` placed on a VM.

    ``index`` runs 1..cluster_size — the paper's G1..G3, C1..C3, etc.
    """

    role: str
    index: int
    vm: str

    def __post_init__(self) -> None:
        if not self.role or not self.vm:
            raise TopologyError("role and VM must be non-empty")
        if self.index < 1:
            raise TopologyError(
                f"instance index must be >= 1, got {self.index}"
            )

    @property
    def label(self) -> str:
        """Display label, e.g. ``G1`` style is left to callers; here ``Config-1``."""
        return f"{self.role}-{self.index}"
