"""Simulated components.

Every failable thing in the simulation — rack, host, VM, supervisor,
process — is a :class:`Component` with an intrinsic state (UP or
REPAIRING), an exponential failure rate, a repair-time selector, and a set
of dependencies.  A component is *effectively up* when it is intrinsically
up and every dependency is effectively up; failure clocks only run while
effectively up (stale clocks are invalidated through the component's epoch
counter — see :mod:`repro.sim.events`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ComponentState(enum.Enum):
    UP = "up"
    REPAIRING = "repairing"


class ComponentKind(enum.Enum):
    RACK = "rack"
    HOST = "host"
    VM = "vm"
    SUPERVISOR = "supervisor"
    PROCESS = "process"
    # Control-network elements (see :mod:`repro.network`).
    SWITCH = "switch"
    ROUTER = "router"
    SITE = "site"
    LINK = "link"
    SRG = "srg"


@dataclass(slots=True)
class Component:
    """One failable element of the simulated deployment.

    Attributes:
        key: unique identity, e.g. ``"proc:Config/config-api-1"``.
        kind: what level of the stack the component models.
        failure_rate: exponential failure rate (1/MTBF) while effectively up.
            Zero means the component never fails intrinsically.
        repair_mean: default mean repair time.  Auto-restarted processes may
            override this dynamically (R vs R_S depending on supervisor
            state) via the engine's repair-time policy.
        dependencies: keys this component needs effectively up (its
            infrastructure chain, plus its supervisor in scenario 2).
        dependents: reverse edges, filled in by the engine.
        auto_restart: process attribute — True when the supervisor restarts
            it (restart mode AUTO).
        supervisor_key: the supervisor overseeing this process, if any.
    """

    key: str
    kind: ComponentKind
    failure_rate: float
    repair_mean: float
    dependencies: tuple[str, ...] = ()
    dependents: list[str] = field(default_factory=list)
    auto_restart: bool = False
    supervisor_key: str | None = None

    state: ComponentState = ComponentState.UP
    epoch: int = 0

    def bump(self) -> int:
        """Invalidate any scheduled event for this component."""
        self.epoch += 1
        return self.epoch
