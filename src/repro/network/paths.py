"""Per-switch control-path availability over a network graph.

For one switch, the *control path* is up when some sequence of up links
(each requiring both endpoints and its shared-risk group up) connects the
switch to at least one up controller site.  This module lowers that
predicate into a :class:`repro.core.structure.StructureFunction` over the
graph's elements, so the whole existing cut-set toolchain applies
unchanged: :func:`repro.core.cutsets.minimal_cut_sets` enumerates the
node+link+SRG cut sets and :func:`~repro.core.cutsets.union_bound` gives
the rare-event upper bound.

Exact ground truth has two evaluators:

* ``"sdp"`` (the default) — minimal path sets are enumerated *on the
  graph* (depth-first simple paths switch -> site, each contributing its
  nodes, links, and SRGs), compiled into a sum of disjoint products
  (:mod:`repro.core.sdp`), and summed.  The path enumeration is
  polynomial per path and the compile is probability-free, so exact
  evaluation survives graphs far past the ~30-element wall where
  state-space methods blow up.
* ``"factored"`` — Shannon factoring with coherence pruning
  (:func:`repro.core.structure.factored_unavailability`), the original
  PR-7 evaluator, kept as the independent cross-check oracle on graphs
  small enough to run it.

Both are memoized on the frozen ``(graph, switch, sites)`` key, and the
path-set enumeration is cached separately so the SDP compile and the
path-set lower bound never re-enumerate.

Bound semantics: with *complete* cut enumeration (``max_order=None``)
the three numbers bracket exactly —

    union_bound  >=  exact unavailability  >=  path-set lower bound

With a bounded cut order the union bound becomes the standard rare-event
*estimate* (truncation can undershoot), and the path-set lower bound is not
computed at all (the bounded-order analysis is the fast path; complete path
enumeration stays available via :func:`control_path_path_sets`); the
analysis records ``None`` instead.  The cross-validation suite asserts the
bracket on fully-enumerated random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterable, Mapping, Sequence

from repro.core.cutsets import (
    RankedCutSet,
    minimal_cut_sets,
    minimal_path_sets,
    rank_cut_sets,
    union_bound,
)
from repro.core.sdp import SdpExpression, canonical_path_sets, compile_sdp
from repro.core.structure import StructureFunction, factored_unavailability
from repro.errors import NetworkError
from repro.models.engine import RoleRequirement, evaluate_topology_cached
from repro.network.graph import NetworkGraph, NetworkLink
from repro.topology.deployment import DeploymentTopology

__all__ = [
    "EXACT_EVALUATORS",
    "ControlPathAnalysis",
    "control_path_structure",
    "control_path_cut_sets",
    "control_path_path_sets",
    "control_path_sdp",
    "path_set_lower_bound",
    "exact_control_path_unavailability",
    "analyze_switch",
    "per_switch_availability",
    "fleet_availability",
]

#: Exact-evaluator names accepted by :func:`exact_control_path_unavailability`
#: and :func:`analyze_switch`; ``"auto"`` resolves to ``"sdp"``.
EXACT_EVALUATORS: tuple[str, ...] = ("auto", "sdp", "factored")


def _check_sites(
    graph: NetworkGraph, switch: str, sites: Iterable[str] | None
) -> tuple[str, ...]:
    node_names = {node.name for node in graph.nodes}
    if switch not in node_names:
        raise NetworkError(f"graph {graph.name!r} has no node {switch!r}")
    resolved = tuple(sites) if sites is not None else graph.sites
    if not resolved:
        raise NetworkError(
            f"graph {graph.name!r} has no controller sites; pass sites="
        )
    for site in resolved:
        if site not in node_names:
            raise NetworkError(f"graph {graph.name!r} has no node {site!r}")
    if switch in resolved:
        raise NetworkError(
            f"switch {switch!r} cannot also be a controller site"
        )
    if len(set(resolved)) != len(resolved):
        raise NetworkError("controller sites must be distinct")
    return resolved


def _prune(
    graph: NetworkGraph, switch: str, sites: tuple[str, ...]
) -> tuple[tuple[str, ...], tuple[NetworkLink, ...], tuple[str, ...]]:
    """Keep only elements that can matter to switch -> site connectivity.

    Restricts to the connected component containing the switch, then
    iteratively peels degree-1 nodes that are neither the switch nor a
    site (a spur tree can never carry a control path).  Irrelevant side
    cycles may survive; they only cost enumeration time, never correctness.
    """
    adjacency = graph.adjacency()
    seen = {switch}
    stack = [switch]
    while stack:
        current = stack.pop()
        for link in adjacency[current]:
            neighbor = link.other(current)
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    keep_nodes = set(seen)
    keep_links = {
        link.name
        for link in graph.links
        if link.a in keep_nodes and link.b in keep_nodes
    }
    anchors = {switch, *(site for site in sites if site in keep_nodes)}
    changed = True
    while changed:
        changed = False
        for node in sorted(keep_nodes - anchors):
            incident = [
                link for link in adjacency[node] if link.name in keep_links
            ]
            if len(incident) <= 1:
                keep_nodes.discard(node)
                for link in incident:
                    keep_links.discard(link.name)
                changed = True
    nodes = tuple(n.name for n in graph.nodes if n.name in keep_nodes)
    links = tuple(link for link in graph.links if link.name in keep_links)
    srgs = tuple(
        srg.name
        for srg in graph.srgs
        if any(link.srg == srg.name for link in links)
    )
    return nodes, links, srgs


def control_path_structure(
    graph: NetworkGraph, switch: str, sites: Iterable[str] | None = None
) -> StructureFunction:
    """The switch's control-path predicate as a structure function.

    Component names are the (pruned) graph element names — nodes, then
    links, then SRGs, in graph order.  The function is true when the switch
    is up and a path of usable links (link up, SRG up, both endpoints up)
    reaches an up controller site.
    """
    resolved_sites = _check_sites(graph, switch, sites)
    nodes, links, srgs = _prune(graph, switch, resolved_sites)
    site_set = frozenset(site for site in resolved_sites if site in set(nodes))
    incident: dict[str, list[NetworkLink]] = {name: [] for name in nodes}
    for link in links:
        incident[link.a].append(link)
        incident[link.b].append(link)

    def reaches_site(state: Mapping[str, bool]) -> bool:
        if not state[switch]:
            return False
        if not site_set:
            return False
        seen = {switch}
        stack = [switch]
        while stack:
            current = stack.pop()
            if current in site_set:
                return True
            for link in incident[current]:
                if not state[link.name]:
                    continue
                if link.srg is not None and not state[link.srg]:
                    continue
                neighbor = link.other(current)
                if neighbor in seen or not state[neighbor]:
                    continue
                seen.add(neighbor)
                stack.append(neighbor)
        return False

    names = (*nodes, *(link.name for link in links), *srgs)
    return StructureFunction(names, reaches_site)


def control_path_cut_sets(
    graph: NetworkGraph,
    switch: str,
    sites: Iterable[str] | None = None,
    max_order: int | None = None,
) -> list[RankedCutSet]:
    """Ranked minimal cut sets of one switch's control path.

    Cut sets mix element types freely — ``{"S1"}`` (the switch itself),
    ``{"L1", "L2"}`` (a link pair), ``{"SRG-A"}`` (one conduit severing
    every path) — ranked most-probable first using the graph's per-element
    unavailabilities.
    """
    structure = control_path_structure(graph, switch, sites)
    cuts = minimal_cut_sets(structure, max_order=max_order)
    return rank_cut_sets(cuts, graph.unavailability_map())


@lru_cache(maxsize=8192)
def _control_path_sets_cached(
    graph: NetworkGraph, switch: str, sites: tuple[str, ...]
) -> tuple[frozenset[str], ...]:
    """Minimal path sets of one switch's control path, from the graph.

    Depth-first enumeration of simple paths from the switch that terminate
    at the first controller site reached (continuing past an up site could
    only produce a superset).  Each path contributes its nodes, its links,
    and the SRGs those links ride; :func:`repro.core.sdp.canonical_path_sets`
    then drops the occasional superset (possible when SRGs collapse
    distinct routes) and fixes the shortest-first order the SDP compile
    expects.  Cached on the frozen ``(graph, switch, sites)`` key so the
    SDP compile and the path-set lower bound share one enumeration.
    """
    nodes, links, _ = _prune(graph, switch, sites)
    node_set = set(nodes)
    site_set = {site for site in sites if site in node_set}
    incident: dict[str, list[NetworkLink]] = {name: [] for name in nodes}
    for link in links:
        incident[link.a].append(link)
        incident[link.b].append(link)
    found: list[frozenset[str]] = []
    elements: list[str] = [switch]
    visited = {switch}

    def walk(current: str) -> None:
        for link in incident[current]:
            neighbor = link.other(current)
            if neighbor in visited:
                continue
            step = [link.name, neighbor]
            if link.srg is not None:
                step.append(link.srg)
            if neighbor in site_set:
                found.append(frozenset((*elements, *step)))
                continue
            visited.add(neighbor)
            elements.extend(step)
            walk(neighbor)
            del elements[-len(step):]
            visited.discard(neighbor)

    if site_set:
        walk(switch)
    return canonical_path_sets(found)


def control_path_path_sets(
    graph: NetworkGraph, switch: str, sites: Iterable[str] | None = None
) -> tuple[frozenset[str], ...]:
    """Complete minimal path sets of one switch's control path (memoized).

    Unlike the dual cut-set route
    (:func:`repro.core.cutsets.minimal_path_sets`, exponential in the
    element count), this enumerates simple switch -> site paths directly on
    the graph, so it stays feasible on hundreds-of-element backbones.
    """
    resolved = _check_sites(graph, switch, sites)
    return _control_path_sets_cached(graph, switch, resolved)


@lru_cache(maxsize=8192)
def _sdp_expression_cached(
    graph: NetworkGraph, switch: str, sites: tuple[str, ...]
) -> SdpExpression:
    return compile_sdp(_control_path_sets_cached(graph, switch, sites))


def control_path_sdp(
    graph: NetworkGraph, switch: str, sites: Iterable[str] | None = None
) -> SdpExpression:
    """The switch's control path compiled to disjoint products (memoized).

    The compiled expression is probability-free: it can be re-evaluated
    under any per-element availability assignment, which is what the
    batched sweeps in :mod:`repro.network.batch` build on.
    """
    resolved = _check_sites(graph, switch, sites)
    return _sdp_expression_cached(graph, switch, resolved)


def path_set_lower_bound(
    structure: StructureFunction, availability: Mapping[str, float]
) -> float:
    """Lower bound on unavailability from *complete* minimal path sets.

    ``A <= sum over minimal path sets of P(all members up)`` (union bound on
    the up event), so ``U >= 1 - sum``.  Requires the full path-set list —
    a truncated list would shrink the sum and overstate the bound.  Works
    on any structure function (via the exponential dual enumeration);
    :func:`analyze_switch` uses the cached graph enumeration instead.
    """
    return _paths_lower_bound(minimal_path_sets(structure), availability)


def _paths_lower_bound(
    paths: Sequence[frozenset[str]], availability: Mapping[str, float]
) -> float:
    total = 0.0
    for path in paths:
        term = 1.0
        for name in path:
            term *= availability[name]
        total += term
    return max(0.0, 1.0 - total)


def _resolve_evaluator(evaluator: str) -> str:
    if evaluator not in EXACT_EVALUATORS:
        raise NetworkError(
            f"evaluator must be one of {EXACT_EVALUATORS}, got {evaluator!r}"
        )
    return "sdp" if evaluator == "auto" else evaluator


@lru_cache(maxsize=8192)
def _exact_unavailability_cached(
    graph: NetworkGraph,
    switch: str,
    sites: tuple[str, ...],
    evaluator: str = "sdp",
) -> float:
    if evaluator == "factored":
        structure = control_path_structure(graph, switch, sites)
        return factored_unavailability(structure, graph.availability_map())
    expression = _sdp_expression_cached(graph, switch, sites)
    return expression.unavailability(graph.availability_map())


def exact_control_path_unavailability(
    graph: NetworkGraph,
    switch: str,
    sites: Iterable[str] | None = None,
    evaluator: str = "auto",
) -> float:
    """Exact unavailability of one switch's control path (memoized).

    ``evaluator="auto"`` (the default) resolves to the sum-of-disjoint-
    products kernel; ``"factored"`` forces the Shannon-factored
    state-space evaluator (the independent oracle — exponential past ~30
    elements).  Both agree to float rounding and are cached on the frozen
    ``(graph, switch, sites)`` key — placement searches revisit the same
    switch under many site subsets and hit this memo constantly.
    """
    resolved = _check_sites(graph, switch, sites)
    return _exact_unavailability_cached(
        graph, switch, resolved, _resolve_evaluator(evaluator)
    )


@dataclass(frozen=True)
class ControlPathAnalysis:
    """One switch's control-path availability picture.

    Attributes:
        switch: the switch analyzed.
        sites: controller sites considered.
        components: element names of the (pruned) structure function.
        cut_sets: ranked minimal cut sets (complete iff ``max_order`` was
            ``None``).
        max_order: the cut-order bound used (``None`` = complete).
        union_bound: sum of cut-set probabilities — an upper bound when
            enumeration was complete, the rare-event estimate otherwise.
        path_lower_bound: ``1 - sum(path availabilities)`` when enumeration
            was complete, else ``None``.
        unavailability: exact control-path unavailability.
        evaluator: which exact evaluator produced ``unavailability``
            (``"sdp"`` or ``"factored"``).
    """

    switch: str
    sites: tuple[str, ...]
    components: tuple[str, ...]
    cut_sets: tuple[RankedCutSet, ...]
    max_order: int | None
    union_bound: float
    path_lower_bound: float | None
    unavailability: float
    evaluator: str = "sdp"

    @property
    def availability(self) -> float:
        return 1.0 - self.unavailability

    @property
    def min_cut_order(self) -> int:
        """Order of the smallest cut set (resilience depth of the path)."""
        return min((cut.order for cut in self.cut_sets), default=0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "switch": self.switch,
            "sites": list(self.sites),
            "components": list(self.components),
            "cut_sets": [
                {
                    "components": sorted(cut.components),
                    "probability": cut.probability,
                }
                for cut in self.cut_sets
            ],
            "max_order": self.max_order,
            "union_bound": self.union_bound,
            "path_lower_bound": self.path_lower_bound,
            "unavailability": self.unavailability,
            "availability": self.availability,
            "evaluator": self.evaluator,
        }


def analyze_switch(
    graph: NetworkGraph,
    switch: str,
    sites: Iterable[str] | None = None,
    max_order: int | None = None,
    evaluator: str = "auto",
) -> ControlPathAnalysis:
    """Full control-path analysis of one switch.

    ``sites`` defaults to every controller site in the graph.  With
    ``max_order=None`` the cut enumeration is complete and the bracket
    ``union_bound >= exact >= path_lower_bound`` is guaranteed; a bounded
    order trades the path lower bound (recorded as ``None``) and the upper
    bound guarantee for enumeration time on larger graphs.  The path lower
    bound reuses the cached graph path enumeration the exact SDP evaluator
    compiles from, so it costs one product per path, not a dual cut-set
    search.
    """
    resolved = _check_sites(graph, switch, sites)
    chosen = _resolve_evaluator(evaluator)
    structure = control_path_structure(graph, switch, resolved)
    cuts = minimal_cut_sets(structure, max_order=max_order)
    ranked = rank_cut_sets(cuts, graph.unavailability_map())
    lower = (
        _paths_lower_bound(
            _control_path_sets_cached(graph, switch, resolved),
            graph.availability_map(),
        )
        if max_order is None
        else None
    )
    exact = _exact_unavailability_cached(graph, switch, resolved, chosen)
    return ControlPathAnalysis(
        switch=switch,
        sites=resolved,
        components=structure.names,
        cut_sets=tuple(ranked),
        max_order=max_order,
        union_bound=union_bound(ranked),
        path_lower_bound=lower,
        unavailability=exact,
        evaluator=chosen,
    )


def per_switch_availability(
    graph: NetworkGraph,
    sites: Iterable[str] | None = None,
    switches: Iterable[str] | None = None,
    cluster_topology: DeploymentTopology | None = None,
    cluster_requirements: Sequence[RoleRequirement] | None = None,
    cluster_availability: Mapping[str, float] | None = None,
    evaluator: str = "auto",
) -> dict[str, float]:
    """Exact control-path availability for each switch.

    When the cluster arguments are given, each switch's network availability
    is multiplied by the controller cluster's own availability evaluated
    through the memoized exact engine
    (:func:`repro.models.engine.evaluate_topology_cached`) — the end-to-end
    ``A_CP`` a switch actually experiences is ``A_network * A_cluster``
    under the independence assumption both layers already make.
    """
    resolved_switches = tuple(switches) if switches is not None else graph.switches
    if not resolved_switches:
        raise NetworkError(f"graph {graph.name!r} has no switches to evaluate")
    cluster_factor = 1.0
    if cluster_topology is not None:
        if cluster_requirements is None or cluster_availability is None:
            raise NetworkError(
                "cluster_topology requires cluster_requirements and "
                "cluster_availability"
            )
        cluster_factor = evaluate_topology_cached(
            cluster_topology, tuple(cluster_requirements), cluster_availability
        )
    return {
        switch: cluster_factor
        * (
            1.0
            - exact_control_path_unavailability(
                graph, switch, sites, evaluator=evaluator
            )
        )
        for switch in resolved_switches
    }


def fleet_availability(per_switch: Mapping[str, float]) -> float:
    """Fleet-wide A_CP: the mean over switches (each switch weighted equally)."""
    if not per_switch:
        raise NetworkError("per-switch availability mapping is empty")
    return sum(per_switch.values()) / len(per_switch)
