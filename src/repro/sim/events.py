"""Discrete-event queue.

A heap-ordered future event list with stable FIFO tie-breaking and
token-based cancellation: events carry the epoch of the component they were
scheduled for, and the dispatcher drops events whose epoch has moved on
(the standard trick for exponential clocks that pause under failure
masking).

Hot-path representation: heap entries are plain ``(time, sequence, event)``
tuples — tuple comparison orders by time with the monotone sequence
breaking ties FIFO before the (incomparable) event is ever reached — and
:class:`Event` is a ``slots=True`` dataclass, so scheduling allocates no
``__dict__`` and comparisons stay in C.

Stale-entry compaction: epoch-cancelled events normally linger in the heap
until they pop.  Workloads that cancel heavily (mass maintenance holds,
common-cause group failures) can fill the heap with corpses, so the owner
reports cancellations via :meth:`EventQueue.note_stale` and the queue
lazily rebuilds itself — dropping entries the owner's ``stale`` predicate
rejects — once corpses exceed a threshold fraction.  Compaction preserves
live-event ordering exactly (entries keep their original sequence numbers)
and never drops a live event, so the dispatched event stream is
bit-identical with compaction on or off.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.obs import runtime as obs

#: Compaction triggers only above this heap size (small heaps pop corpses
#: quickly anyway; rebuilding them would cost more than it saves).
COMPACT_MIN_SIZE = 64
#: ... and only when more than this fraction of entries are known stale.
COMPACT_STALE_FRACTION = 0.5


@dataclass(slots=True)
class Event:
    """A scheduled callback with a staleness token.

    Attributes:
        time: absolute simulation time the event fires at.
        action: zero-argument callable run when the event is dispatched.
        component: optional component key the event belongs to.
        epoch: the component's epoch at scheduling time; the queue owner
            compares it against the current epoch to drop stale events.
    """

    time: float
    action: Callable[[], None]
    component: str | None = None
    epoch: int = 0


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking.

    ``stale`` is the owner's staleness predicate (``Event -> bool``), only
    consulted during compaction; owners that never call :meth:`note_stale`
    get the original always-keep behavior.
    """

    def __init__(self, stale: Callable[[Event], bool] | None = None) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._stale = stale
        self._stale_hint = 0
        #: Stale entries purged by compaction across this queue's lifetime.
        self.purged = 0
        #: How many lazy compactions have run.
        self.compactions = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def stale_hint(self) -> int:
        """Entries the owner has reported as epoch-cancelled (may overcount
        entries that already popped)."""
        return self._stale_hint

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, event: Event) -> None:
        if event.time < self._now:
            raise SimulationError(
                f"cannot schedule event at {event.time} before now={self._now}"
            )
        heapq.heappush(
            self._heap, (event.time, next(self._sequence), event)
        )

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("event queue is empty")
        time, _, event = heapq.heappop(self._heap)
        if time < self._now:
            raise SimulationError("event queue produced an out-of-order event")
        self._now = time
        return event

    def advance_to(self, time: float) -> None:
        """Move the clock forward without dispatching (end-of-horizon)."""
        if time < self._now:
            raise SimulationError(
                f"cannot advance clock backwards to {time} from {self._now}"
            )
        self._now = time

    # -- stale-entry compaction ---------------------------------------------------

    def note_stale(self, count: int = 1) -> None:
        """Report ``count`` entries newly cancelled by an epoch bump.

        The hint triggers a lazy compaction once known-stale entries exceed
        :data:`COMPACT_STALE_FRACTION` of a heap larger than
        :data:`COMPACT_MIN_SIZE`.  The hint is an upper bound — a reported
        entry may pop (and be dropped by the dispatcher) before compaction
        runs — which only ever makes compaction run early, never skip.
        """
        self._stale_hint += count
        if (
            len(self._heap) > COMPACT_MIN_SIZE
            and self._stale_hint > COMPACT_STALE_FRACTION * len(self._heap)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop every entry the ``stale`` predicate rejects; re-heapify.

        Entries keep their original ``(time, sequence)`` keys, so the
        relative order of surviving events — including FIFO tie-breaking at
        equal times — is untouched.  Returns how many entries were purged.
        """
        stale = self._stale
        if stale is None:
            self._stale_hint = 0
            return 0
        before = len(self._heap)
        self._heap = [
            entry for entry in self._heap if not stale(entry[2])
        ]
        heapq.heapify(self._heap)
        purged = before - len(self._heap)
        self.purged += purged
        self.compactions += 1
        self._stale_hint = 0
        if obs.enabled():
            obs.count("sim.queue.purged_events", purged)
            obs.gauge("sim.queue.stale_purged_total", self.purged)
        return purged
