"""Human-readable rendering of run manifests.

``repro-avail obs --manifest trace.json`` pipes a stored manifest through
:func:`render_manifest` to answer the usual post-hoc questions — what ran,
with which parameters and seeds, through which solver path, and where the
time went — without re-running anything.  The JSON/CSV writers live in
:mod:`repro.reporting.manifest`; this module only formats.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.manifest import RunManifest
from repro.reporting.tables import format_table

__all__ = ["render_manifest", "summarize_spans"]


def summarize_spans(
    spans: Iterable[Mapping[str, object]],
) -> list[tuple[str, int, float, float]]:
    """Aggregate span records by name: ``(name, count, total_s, mean_s)``.

    Sorted by total time descending — the profile view of a trace.
    """
    totals: dict[str, tuple[int, float]] = {}
    for span in spans:
        name = str(span["name"])
        calls, seconds = totals.get(name, (0, 0.0))
        totals[name] = (calls + 1, seconds + float(span["duration"]))
    return sorted(
        (
            (name, calls, seconds, seconds / calls)
            for name, (calls, seconds) in totals.items()
        ),
        key=lambda row: row[2],
        reverse=True,
    )


def _kv_table(title: str, pairs: list[tuple[str, str]]) -> str:
    return format_table(("Field", "Value"), pairs, title=title)


def render_manifest(manifest: RunManifest, top_spans: int = 12) -> str:
    """Render a manifest as the stacked tables the CLI prints."""
    sections: list[str] = []

    header = [
        ("command", manifest.command or "-"),
        ("package version", manifest.package_version),
        ("schema version", str(manifest.schema_version)),
        ("params hash", manifest.params_hash),
        ("topology", manifest.topology or "-"),
        (
            "solver path",
            " -> ".join(manifest.solver_path) if manifest.solver_path else "-",
        ),
    ]
    for key in sorted(manifest.seed):
        header.append((f"seed.{key}", repr(manifest.seed[key])))
    sections.append(_kv_table("Run manifest", header))

    if manifest.arguments:
        sections.append(
            _kv_table(
                "Arguments",
                [
                    (key, repr(manifest.arguments[key]))
                    for key in sorted(manifest.arguments)
                ],
            )
        )

    if manifest.phases:
        sections.append(
            format_table(
                ("Phase", "Seconds"),
                [
                    (phase.name, f"{phase.seconds:.6f}")
                    for phase in manifest.phases
                ],
                title="Phases",
            )
        )

    counters = manifest.metrics.get("counters", {})
    gauges = manifest.metrics.get("gauges", {})
    histograms = manifest.metrics.get("histograms", {})
    metric_rows = [
        (name, "counter", f"{value:g}") for name, value in counters.items()
    ]
    metric_rows += [
        (name, "gauge", "-" if value is None else f"{value:g}")
        for name, value in gauges.items()
    ]
    metric_rows += [
        (
            name,
            "histogram",
            (
                f"n={summary['count']} total={summary['total']:.6f}s "
                f"mean={summary['mean']:.6f}s"
                if summary.get("count")
                else "n=0"
            ),
        )
        for name, summary in histograms.items()
    ]
    if metric_rows:
        sections.append(
            format_table(("Metric", "Kind", "Value"), metric_rows,
                         title="Metrics")
        )

    profile = summarize_spans(manifest.spans)[:top_spans]
    if profile:
        sections.append(
            format_table(
                ("Span", "Calls", "Total (s)", "Mean (s)"),
                [
                    (name, str(calls), f"{total:.6f}", f"{mean:.6f}")
                    for name, calls, total, mean in profile
                ],
                title="Span profile (by total time)",
            )
        )

    return "\n\n".join(sections)
