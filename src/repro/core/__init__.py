"""Core reliability mathematics.

This package implements the building blocks of the paper's analytic models:

* :mod:`repro.core.kofn` — the k-of-n block availability of Eq. (1),
* :mod:`repro.core.blocks` — a reliability-block-diagram (RBD) algebra,
* :mod:`repro.core.structure` — coherent structure functions,
* :mod:`repro.core.cutsets` — minimal cut/path sets and exact probability,
* :mod:`repro.core.sdp` — sum-of-disjoint-products exact evaluation that
  scales past the state-enumeration evaluators,
* :mod:`repro.core.importance` — component importance measures,
* :mod:`repro.core.states` — the weighted state-enumeration (conditioning)
  engine that generalizes the paper's "condition on hosts/racks up" steps.
"""

from repro.core.kofn import a_m_of_n, a_m_of_n_array, kofn_unavailability
from repro.core.blocks import Basic, Block, KOfN, Parallel, Series
from repro.core.sdp import (
    SdpExpression,
    SdpTerm,
    canonical_path_sets,
    compile_sdp,
    sdp_terms,
)
from repro.core.states import enumerate_up_down, weighted_condition

__all__ = [
    "a_m_of_n",
    "a_m_of_n_array",
    "kofn_unavailability",
    "Block",
    "Basic",
    "Series",
    "Parallel",
    "KOfN",
    "SdpTerm",
    "SdpExpression",
    "canonical_path_sets",
    "compile_sdp",
    "sdp_terms",
    "enumerate_up_down",
    "weighted_condition",
]
