"""The paper's printed parameter values.

Section V-D: "we assume in the example to follow that A_C = 0.9995,
A_V = 0.99995, A_H = 0.99999, and A_R = 0.99999", but the Fig. 3 sweep and
every SW-centric example use ``A_H = 0.99990`` ("with A_V = 0.99995,
A_H = 0.99990, and A_R = 0.99999").  We expose both: ``PAPER_HARDWARE``
carries the Fig. 3 / section VI values (the ones every quoted number is
computed from) and ``PAPER_HARDWARE_SD`` the Same-Day-maintenance variant
mentioned in the prose.

Section VI-A: "A = 0.99998 (based on F = 5000 hours and R = 0.1 hour) and
A_S = 0.99980 (based on R_S = 1 hour)".
"""

from __future__ import annotations

from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams

#: Hardware availabilities used for Fig. 3 and all SW-centric results.
PAPER_HARDWARE = HardwareParams(
    a_role=0.9995, a_vm=0.99995, a_host=0.99990, a_rack=0.99999
)

#: Alias making the figure binding explicit at call sites.
PAPER_HARDWARE_FIG3 = PAPER_HARDWARE

#: The section V-D prose variant with Same-Day host maintenance (A_H=0.99999).
PAPER_HARDWARE_SD = HardwareParams(
    a_role=0.9995, a_vm=0.99995, a_host=0.99999, a_rack=0.99999
)

#: Software process parameters: F=5000 h, R=0.1 h, R_S=1 h.
PAPER_SOFTWARE = SoftwareParams(
    mtbf_hours=5000.0,
    auto_restart_hours=0.1,
    manual_restart_hours=1.0,
    maintenance_window_hours=10.0,
)

#: Fig. 3 sweep range for the role availability A_C: [0.9995 +/- 0.0005].
FIG3_ROLE_AVAILABILITY_RANGE = (0.999, 1.0)

#: Figs. 4-5 sweep range in orders of magnitude of downtime around defaults.
FIG45_ORDERS_RANGE = (-1.0, 1.0)


def paper_hardware() -> HardwareParams:
    """A fresh copy of the paper's hardware defaults (immutable anyway)."""
    return PAPER_HARDWARE


def paper_software() -> SoftwareParams:
    """A fresh copy of the paper's software defaults."""
    return PAPER_SOFTWARE
