"""Regenerate the network-graph availability fixtures.

Run from the repository root::

    PYTHONPATH=src python -m tests.regen_network_fixtures

The fixtures pin three things, all pure functions of committed inputs:

* per-switch control-path analyses (exact unavailability, union bound,
  path lower bound, cut-set census) for every reference graph in
  :mod:`repro.topology.network_reference`, at full float precision;
* placement-search outcomes (chosen sites, fleet value, greedy bound)
  on the backbone mesh and the ring;
* the *exact* per-replication outputs of one pinned network campaign
  with link-flap and shared-risk-group hazards attached.

``tests/test_network_determinism.py`` re-runs all three workloads —
the campaign across worker counts and with telemetry on/off — and
compares against these values (analytic numbers at 1e-12, simulation
outputs bit-identically), so any change to the cut-set compiler, the
factored evaluator, the optimizer's tie-breaking, or the event stream
fails loudly.  Regenerate (and commit the diff) only when a change is
*supposed* to alter these numbers, and say why in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faults import LinkFlapSpec, SrgFailureSpec
from repro.network import (
    NetworkCampaignSpec,
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
    analyze_switch,
    optimize_placement,
    run_network_campaign,
)
from repro.topology.network_reference import (
    backbone_network,
    fat_tree_pod,
    line_network,
    ring_network,
    two_tier_network,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FIXTURE_NAME = "network_fixtures.json"

#: Reference graphs and the cut-set order each analysis is pinned at.
#: ``None`` means complete enumeration (so the path lower bound exists);
#: the backbone mesh is bounded at order 3 to keep the test wall fast,
#: which also pins the bounded-order contract (no path lower bound).
#: The 66-element two-tier graph is bounded at order 2 — its exact
#: numbers come from the SDP evaluator; complete enumeration (and the
#: factored evaluator) are infeasible there, which is the point.
ANALYSIS_GRAPHS = (
    (line_network, None),
    (ring_network, None),
    (fat_tree_pod, None),
    (backbone_network, 3),
    (two_tier_network, 2),
)

#: Placement searches pinned by the fixture: (builder, k, method).
#: The local search runs with its default restarts/seed, so the pin
#: also guards the seeded-restart determinism contract.
PLACEMENT_SEARCHES = (
    (backbone_network, 1, "auto"),
    (backbone_network, 2, "auto"),
    (ring_network, 1, "greedy"),
    (backbone_network, 2, "local"),
    (two_tier_network, 1, "local"),
)


def campaign_graph() -> NetworkGraph:
    """The pinned campaign graph: small, stressed, with one SRG.

    Availabilities are deliberately poor (0.97-0.995) so replications
    accumulate plenty of failure/repair events over a short horizon.
    """
    return NetworkGraph(
        name="fixture-mesh",
        nodes=(
            NetworkNode("CTRL", kind="site", availability=0.995),
            NetworkNode("R1", kind="router", availability=0.99),
            NetworkNode("S1", availability=0.99),
            NetworkNode("S2", availability=0.985),
        ),
        links=(
            NetworkLink("LC", "CTRL", "R1", availability=0.98),
            NetworkLink("L1", "R1", "S1", availability=0.975, srg="G1"),
            NetworkLink("L2", "R1", "S2", availability=0.975, srg="G1"),
            NetworkLink("L3", "S1", "S2", availability=0.97),
        ),
        srgs=(SharedRiskGroup("G1", availability=0.995),),
    )


#: The pinned campaign: both network hazard kinds over the stressed mesh,
#: so the fixture exercises per-link flap clocks, held repairs, and
#: correlated SRG group failures in one event stream.
CAMPAIGN_SPEC = NetworkCampaignSpec(
    graph=campaign_graph(),
    horizon_hours=2_000.0,
    replications=3,
    seed=73,
    batches=4,
    node_mtbf_hours=400.0,
    link_mtbf_hours=250.0,
    srg_mtbf_hours=800.0,
    hazards=(
        LinkFlapSpec("kind:link", mtbf_hours=400.0, down_hours=0.5),
        SrgFailureSpec("G1", mtbf_hours=900.0),
    ),
)


def analysis_record(analysis) -> dict:
    """The numeric surface of one per-switch analysis, full precision."""
    return {
        "unavailability": analysis.unavailability,
        "union_bound": analysis.union_bound,
        "path_lower_bound": analysis.path_lower_bound,
        "cut_sets": len(analysis.cut_sets),
        "min_cut_order": analysis.min_cut_order,
    }


def campaign_record(result) -> dict:
    """Every float of one :class:`NetworkRunResult`, at full precision."""
    return {
        "seed": result.seed,
        "per_switch": {name: value for name, value in result.per_switch},
        "all_switches": result.all_switches,
        "events": result.events,
    }


def run_fixture_campaign(workers: int = 1, executor=None):
    """The pinned campaign workload (shared with the determinism tests)."""
    return run_network_campaign(CAMPAIGN_SPEC, workers=workers, executor=executor)


def build_fixture() -> dict:
    analyses = {}
    for builder, max_order in ANALYSIS_GRAPHS:
        graph = builder()
        analyses[graph.name] = {
            "graph_hash": graph.graph_hash(),
            "max_order": max_order,
            "switches": {
                switch: analysis_record(
                    analyze_switch(graph, switch, max_order=max_order)
                )
                for switch in graph.switches
            },
        }
    placements = []
    for builder, k, method in PLACEMENT_SEARCHES:
        graph = builder()
        result = optimize_placement(graph, k=k, method=method)
        placements.append(
            {"graph": graph.name, "result": result.to_dict()}
        )
    campaign = run_fixture_campaign()
    return {
        "description": (
            "Pinned per-switch control-path analyses and placement "
            "searches for every reference graph (1e-12 agreement "
            "required) plus bit-exact per-replication outputs of the "
            "pinned hazard campaign (== equality required across worker "
            "counts and telemetry on/off)"
        ),
        "analysis": analyses,
        "placement": placements,
        "campaign": {
            "spec": CAMPAIGN_SPEC.to_dict(),
            "spec_hash": CAMPAIGN_SPEC.params_hash(),
            "seeds": list(campaign.seeds),
            "results": [campaign_record(r) for r in campaign.results],
            "injections": {
                kind: campaign.total_injections(kind)
                for kind in ("link_flap", "srg_failure")
            },
        },
    }


def regenerate(directory: Path = GOLDEN_DIR) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / FIXTURE_NAME
    target.write_text(
        json.dumps(build_fixture(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=GOLDEN_DIR,
        help="directory to write the fixture into (default: tests/golden)",
    )
    args = parser.parse_args(argv)
    print(f"wrote {regenerate(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
