"""Network subsystem reproducibility against the committed golden fixture.

Three contracts, all anchored by ``tests/golden/network_fixtures.json``
(regenerate with ``tests/regen_network_fixtures.py`` — never in place):

* the analytic surface (exact unavailability, union bound, path lower
  bound, cut-set census) of every reference graph matches the fixture to
  1e-12, and graph hashes are stable across JSON round-trips;
* placement searches reproduce the pinned sites, values, and greedy
  bounds exactly;
* the pinned hazard campaign is bit-identical (``==``, no tolerance)
  to the fixture and across worker counts and telemetry on/off — the
  same discipline ``test_sim_engine_determinism.py`` applies to the
  controller simulator.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.network import NetworkCampaignSpec, NetworkGraph, analyze_switch
from repro.network.placement import optimize_placement
from repro.network import run_network_campaign
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.obs.telemetry import JsonlSink
from repro.topology.network_reference import NETWORK_REFERENCE_BUILDERS

from tests.regen_network_fixtures import (
    ANALYSIS_GRAPHS,
    CAMPAIGN_SPEC,
    PLACEMENT_SEARCHES,
    analysis_record,
    campaign_record,
    run_fixture_campaign,
)

GOLDEN = Path(__file__).resolve().parent / "golden" / "network_fixtures.json"
TOL = 1e-12


@pytest.fixture(scope="module")
def fixture() -> dict:
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


@pytest.fixture(autouse=True)
def _no_leaked_session():
    obs.stop()
    telemetry.stop()
    yield
    obs.stop()
    telemetry.stop()


def _close(actual: float | None, expected: float | None) -> bool:
    if actual is None or expected is None:
        return actual is None and expected is None
    return math.isclose(actual, expected, rel_tol=0.0, abs_tol=TOL)


def _fingerprint(campaign):
    return (campaign.results, campaign.seeds, campaign.stats)


class TestAnalysisGolden:
    @pytest.mark.parametrize(
        "builder,max_order",
        ANALYSIS_GRAPHS,
        ids=[builder.__name__ for builder, _ in ANALYSIS_GRAPHS],
    )
    def test_reference_graph_matches_fixture(self, fixture, builder, max_order):
        graph = builder()
        pinned = fixture["analysis"][graph.name]
        assert graph.graph_hash() == pinned["graph_hash"]
        assert pinned["max_order"] == max_order
        assert set(pinned["switches"]) == set(graph.switches)
        for switch, expected in pinned["switches"].items():
            record = analysis_record(
                analyze_switch(graph, switch, max_order=max_order)
            )
            assert record["cut_sets"] == expected["cut_sets"]
            assert record["min_cut_order"] == expected["min_cut_order"]
            for key in ("unavailability", "union_bound", "path_lower_bound"):
                assert _close(record[key], expected[key]), (
                    f"{graph.name}/{switch} {key}: "
                    f"{record[key]!r} != {expected[key]!r}"
                )

    def test_graph_hash_survives_json_round_trip(self):
        for builder in NETWORK_REFERENCE_BUILDERS.values():
            graph = builder()
            restored = NetworkGraph.from_json(graph.to_json())
            assert restored == graph
            assert restored.graph_hash() == graph.graph_hash()


class TestPlacementGolden:
    def test_pinned_searches_reproduce_exactly(self, fixture):
        assert len(fixture["placement"]) == len(PLACEMENT_SEARCHES)
        for pinned, (builder, k, method) in zip(
            fixture["placement"], PLACEMENT_SEARCHES
        ):
            graph = builder()
            assert pinned["graph"] == graph.name
            result = optimize_placement(graph, k=k, method=method)
            expected = pinned["result"]
            assert list(result.sites) == expected["sites"]
            assert result.method == expected["method"]
            assert result.evaluations == expected["evaluations"]
            assert _close(result.availability, expected["availability"])
            assert _close(result.bound, expected["bound"])
            assert dict(result.per_switch).keys() == (
                expected["per_switch"].keys()
            )
            for switch, value in result.per_switch:
                assert _close(value, expected["per_switch"][switch])


class TestCampaignBitIdentical:
    def test_matches_fixture_bit_for_bit(self, fixture):
        pinned = fixture["campaign"]
        assert CAMPAIGN_SPEC.to_dict() == pinned["spec"]
        assert CAMPAIGN_SPEC.params_hash() == pinned["spec_hash"]
        campaign = run_fixture_campaign()
        assert list(campaign.seeds) == pinned["seeds"]
        assert [campaign_record(r) for r in campaign.results] == (
            pinned["results"]
        )
        for kind, count in pinned["injections"].items():
            assert campaign.total_injections(kind) == count

    def test_spec_round_trip_gives_identical_results(self):
        restored = NetworkCampaignSpec.from_json(CAMPAIGN_SPEC.to_json())
        assert restored == CAMPAIGN_SPEC
        assert restored.params_hash() == CAMPAIGN_SPEC.params_hash()
        assert restored.graph.graph_hash() == (
            CAMPAIGN_SPEC.graph.graph_hash()
        )
        baseline = run_fixture_campaign()
        rerun = run_network_campaign(restored)
        assert _fingerprint(rerun) == _fingerprint(baseline)

    @pytest.mark.slow
    def test_workers_do_not_change_results(self):
        baseline = run_fixture_campaign(workers=1)
        pooled = run_fixture_campaign(workers=4)
        assert _fingerprint(pooled) == _fingerprint(baseline)

    def test_telemetry_does_not_change_results(self, tmp_path):
        baseline = run_fixture_campaign()
        telemetry.start([JsonlSink(tmp_path / "net.jsonl")])
        try:
            streamed = run_fixture_campaign()
        finally:
            telemetry.stop()
        assert _fingerprint(streamed) == _fingerprint(baseline)
        events = [
            json.loads(line)
            for line in (tmp_path / "net.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        kinds = {event["kind"] for event in events}
        assert "network.campaign.start" in kinds
        assert "network.campaign.end" in kinds

    def test_tracing_does_not_change_results(self):
        baseline = run_fixture_campaign()
        with obs.session("network-determinism") as session:
            traced = run_fixture_campaign()
        assert _fingerprint(traced) == _fingerprint(baseline)
        assert "network-campaign" in session.solver_path
        assert session.annotations["seed.network_root"] == CAMPAIGN_SPEC.seed
        assert session.annotations["seed.network_hash"] == (
            CAMPAIGN_SPEC.params_hash()
        )
        counters = session.metrics.snapshot()["counters"]
        assert counters["network.injections.link_flap"] > 0
        assert counters["network.injections.srg_failure"] > 0

    def test_regen_out_flag_never_clobbers_goldens(self, tmp_path):
        """``--out`` writes elsewhere; the committed fixture stays put."""
        from tests.regen_network_fixtures import main

        before = GOLDEN.read_bytes()
        assert main(["--out", str(tmp_path)]) == 0
        assert (tmp_path / "network_fixtures.json").exists()
        assert GOLDEN.read_bytes() == before
