"""Finer-grained simulator construction checks across scenarios/topologies."""


from repro.params.software import RestartScenario
from repro.sim.controller_sim import SimulationConfig, build_simulator
from repro.sim.entities import ComponentKind
from repro.sim.scenario import Injection, ScenarioRunner

S1 = RestartScenario.NOT_REQUIRED
S2 = RestartScenario.REQUIRED


class TestSupervisorRepairTimes:
    def test_scenario1_supervisor_waits_for_maintenance_window(
        self, spec, small, hardware, software
    ):
        # Option 1: the supervisor is "restarted during the next
        # maintenance window" — mean outage is the window, not R_S.
        sim = build_simulator(
            spec, small, hardware, software, S1, SimulationConfig()
        )
        supervisor = sim.components["sup:Config-1"]
        assert supervisor.repair_mean == software.maintenance_window_hours

    def test_scenario2_supervisor_restarts_manually(
        self, spec, small, hardware, software
    ):
        sim = build_simulator(
            spec, small, hardware, software, S2, SimulationConfig()
        )
        supervisor = sim.components["sup:Config-1"]
        assert supervisor.repair_mean == software.manual_restart_hours

    def test_auto_processes_marked(self, spec, small, hardware, software):
        sim = build_simulator(
            spec, small, hardware, software, S1, SimulationConfig()
        )
        assert sim.components["proc:Config/config-api-1"].auto_restart
        assert not sim.components["proc:Database/kafka-1"].auto_restart
        assert not sim.components["proc:Analytics/redis-2"].auto_restart

    def test_infrastructure_kinds(self, spec, medium, hardware, software):
        sim = build_simulator(
            spec, medium, hardware, software, S1, SimulationConfig()
        )
        assert sim.components["rack:R2"].kind is ComponentKind.RACK
        assert sim.components["vm:Config1"].kind is ComponentKind.VM

    def test_perfect_hardware_never_fails(self, spec, small, software):
        from repro.params.hardware import HardwareParams

        perfect = HardwareParams(a_role=1.0, a_vm=1.0, a_host=1.0, a_rack=1.0)
        sim = build_simulator(
            spec, small, perfect, software, S1, SimulationConfig()
        )
        assert sim.components["rack:R1"].failure_rate == 0.0


class TestMediumScenario:
    def test_rack1_failure_breaks_quorum_on_medium(self, spec, medium):
        # Medium: H1 and H2 (two of three nodes) live in R1 — the paper's
        # two-rack hazard, replayed deterministically.
        runner = ScenarioRunner.for_controller(spec, medium, scenario=S2)
        trace = runner.run(
            [
                Injection(1.0, "rack:R1", "fail"),
                Injection(3.0, "rack:R1", "repair"),
            ],
            horizon=5.0,
        )
        assert not trace.state_at("cp", 2.0)
        assert trace.state_at("cp", 4.0)

    def test_rack2_failure_survivable_on_medium(self, spec, medium):
        runner = ScenarioRunner.for_controller(spec, medium, scenario=S2)
        trace = runner.run(
            [Injection(1.0, "rack:R2", "fail")], horizon=5.0
        )
        assert trace.state_at("cp", 2.0)  # H1, H2 keep the 2-of-3 quorum

    def test_large_survives_any_single_rack(self, spec, large):
        runner = ScenarioRunner.for_controller(spec, large, scenario=S2)
        for rack in ("R1", "R2", "R3"):
            runner = ScenarioRunner.for_controller(spec, large, scenario=S2)
            trace = runner.run(
                [Injection(1.0, f"rack:{rack}", "fail")], horizon=5.0
            )
            assert trace.state_at("cp", 2.0), rack
