"""Open-loop, multi-tenant load generation against a running ServeApp.

The harness offers traffic the way real clients do — on a clock, not on
completions: request *i* of the plan is fired at ``i / rate`` seconds
after the start regardless of whether earlier requests have finished
(bounded only by ``max_connections`` sockets, so an overloaded server
shows up as latency and shed load, not as a stalled generator).  That is
the arrival model under which the admission envelope, the micro-batcher,
and the single-flight cache actually earn their keep.

The request *plan* is deterministic: ``random.Random(seed)`` draws a
traffic mix of hardware queries (a small parameter vocabulary, so the mix
exercises misses, hits, and coalescing), software-option queries, network
path queries, and — optionally — campaign job submissions, spread across
``tenants`` tenant identities.  Same seed, same plan; only the timings
differ between runs.

The report combines the client's view (per-status and per-kind counts,
latency quantiles, throughput) with the server's own ``/v1/stats`` — and
checks the **attribution coverage** invariant: summed across requests,
the latency-attribution segments (queue-wait / cache / batch-assembly /
kernel-compute / other) must equal the request-latency histogram's total,
because every request's segments tile its wall time by construction.
``coverage`` near 1.0 is the loadtest's pass signal; CI gates on it.

Everything is stdlib asyncio — the HTTP client here speaks the same
minimal HTTP/1.1 the server does, one connection per request.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParameterError, ServeError

__all__ = ["LoadtestConfig", "LoadtestReport", "run_loadtest"]

#: The hardware-parameter vocabulary the plan draws from.  Small on
#: purpose: repeated draws of the same tuple are what produce cache hits
#: and single-flight coalescing under concurrency.
_HW_VOCAB = (0.999, 0.9995, 0.9999)

_HW_MODELS = ("small", "medium", "large")

_OPTIONS = ("1S", "2S", "1L", "2L")


@dataclass(frozen=True)
class LoadtestConfig:
    """One load-generation run against ``host:port``."""

    host: str = "127.0.0.1"
    port: int = 0
    requests: int = 200
    rate: float = 200.0  # offered arrivals per second (open loop)
    tenants: int = 3
    seed: int = 0
    max_connections: int = 64
    timeout_seconds: float = 30.0
    #: Fraction of the mix per query kind; renormalized if they don't sum
    #: to 1.  Jobs are submissions of tiny Monte-Carlo campaigns.
    hw_weight: float = 0.70
    option_weight: float = 0.15
    network_weight: float = 0.10
    job_weight: float = 0.05
    #: Replications per submitted campaign job (kept tiny so the loadtest
    #: measures the serving layer, not the simulator).
    job_replications: int = 8

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ParameterError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.rate <= 0:
            raise ParameterError(f"rate must be > 0, got {self.rate}")
        if self.tenants < 1:
            raise ParameterError(f"tenants must be >= 1, got {self.tenants}")
        if self.max_connections < 1:
            raise ParameterError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        weights = (
            self.hw_weight,
            self.option_weight,
            self.network_weight,
            self.job_weight,
        )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ParameterError(
                "traffic-mix weights must be >= 0 and sum > 0, "
                f"got {weights}"
            )


@dataclass
class LoadtestReport:
    """Client-side observations of one run plus the server's stats."""

    requests: int = 0
    wall_seconds: float = 0.0
    statuses: dict[str, int] = field(default_factory=dict)
    kinds: dict[str, int] = field(default_factory=dict)
    cache_outcomes: dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0
    latencies: list[float] = field(default_factory=list)
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def server_errors(self) -> int:
        return sum(
            count
            for status, count in self.statuses.items()
            if status.startswith("5")
        )

    def coverage(self) -> float | None:
        """Σ segment totals ÷ request-latency total, from server stats.

        1.0 means the attribution segments exactly tile the measured wall
        latency of every request; ``None`` when the server recorded no
        requests (or stats were unavailable).
        """
        segments = self.server_stats.get("segments")
        latency = self.server_stats.get("latency", {}).get("request", {})
        total = latency.get("total_seconds")
        if not segments or not total:
            return None
        attributed = sum(
            record.get("total_seconds", 0.0) for record in segments.values()
        )
        return attributed / total

    def summary(self) -> dict[str, Any]:
        """The JSON report printed by the CLI and saved by the bench."""
        ordered = sorted(self.latencies)

        def quantile(q: float) -> float:
            if not ordered:
                return 0.0
            index = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[index]

        record: dict[str, Any] = {
            "requests": self.requests,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": (
                self.requests / self.wall_seconds
                if self.wall_seconds > 0
                else 0.0
            ),
            "statuses": dict(sorted(self.statuses.items())),
            "kinds": dict(sorted(self.kinds.items())),
            "cache_outcomes": dict(sorted(self.cache_outcomes.items())),
            "transport_errors": self.transport_errors,
            "server_errors": self.server_errors,
            "latency": {
                "mean_seconds": (
                    sum(ordered) / len(ordered) if ordered else 0.0
                ),
                "p50_seconds": quantile(0.50),
                "p99_seconds": quantile(0.99),
                "max_seconds": ordered[-1] if ordered else 0.0,
            },
        }
        coverage = self.coverage()
        if coverage is not None:
            record["attribution_coverage"] = coverage
        slo = self.server_stats.get("slo")
        if slo is not None:
            record["slo"] = slo
        segments = self.server_stats.get("segments")
        if segments is not None:
            record["segments"] = {
                name: data.get("total_seconds", 0.0)
                for name, data in segments.items()
            }
        return record


def _build_plan(config: LoadtestConfig) -> list[dict[str, Any]]:
    """The deterministic request plan (one dict per request)."""
    rng = random.Random(config.seed)
    kinds = ("hw", "option", "network", "job")
    weights = (
        config.hw_weight,
        config.option_weight,
        config.network_weight,
        config.job_weight,
    )
    plan: list[dict[str, Any]] = []
    for index in range(config.requests):
        tenant = f"tenant-{rng.randrange(config.tenants)}"
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "hw":
            payload = {
                "kind": "hw",
                "model": rng.choice(_HW_MODELS),
                "a_role": rng.choice(_HW_VOCAB),
                "a_vm": rng.choice(_HW_VOCAB),
                "a_host": rng.choice(_HW_VOCAB),
                "a_rack": rng.choice(_HW_VOCAB),
            }
            plan.append(
                {"path": "/v1/query", "tenant": tenant, "payload": payload}
            )
        elif kind == "option":
            payload = {"kind": "option", "option": rng.choice(_OPTIONS)}
            plan.append(
                {"path": "/v1/query", "tenant": tenant, "payload": payload}
            )
        elif kind == "network":
            payload = {
                "kind": "network",
                "graph": "line",
                "switch": f"S{rng.randrange(1, 5)}",
            }
            plan.append(
                {"path": "/v1/query", "tenant": tenant, "payload": payload}
            )
        else:
            payload = {
                "kind": "campaign",
                "spec": {
                    "option": rng.choice(_OPTIONS),
                    "horizon_hours": 100.0,
                    "replications": config.job_replications,
                    "seed": rng.randrange(1 << 16),
                },
            }
            plan.append(
                {"path": "/v1/jobs", "tenant": tenant, "payload": payload}
            )
    return plan


async def _http_post(
    host: str,
    port: int,
    path: str,
    payload: Any,
    tenant: str | None = None,
    timeout: float = 30.0,
) -> tuple[int, bytes]:
    """One ``Connection: close`` POST; returns (status, body)."""
    body = json.dumps(payload).encode("utf-8")
    tenant_header = f"X-Tenant: {tenant}\r\n" if tenant else ""
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{tenant_header}"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1") + body
    return await _roundtrip(host, port, request, timeout)


async def _http_get(
    host: str, port: int, path: str, timeout: float = 30.0
) -> tuple[int, bytes]:
    request = (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    return await _roundtrip(host, port, request, timeout)


async def _roundtrip(
    host: str, port: int, request: bytes, timeout: float
) -> tuple[int, bytes]:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(request)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServeError(f"malformed response status line: {status_line!r}")
    return int(parts[1]), body


async def run_loadtest(config: LoadtestConfig) -> LoadtestReport:
    """Drive the plan against the server and assemble the report."""
    plan = _build_plan(config)
    report = LoadtestReport()
    gate = asyncio.Semaphore(config.max_connections)
    started = time.perf_counter()

    async def fire(index: int, item: dict[str, Any]) -> None:
        # Open loop: this request's scheduled arrival is a function of the
        # plan alone, never of other requests' completions.
        due = started + index / config.rate
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        async with gate:
            sent = time.perf_counter()
            try:
                status, body = await _http_post(
                    config.host,
                    config.port,
                    item["path"],
                    item["payload"],
                    tenant=item["tenant"],
                    timeout=config.timeout_seconds,
                )
            except (OSError, asyncio.TimeoutError, ServeError):
                report.transport_errors += 1
                return
            elapsed = time.perf_counter() - sent
        report.requests += 1
        report.latencies.append(elapsed)
        bucket = str(status)
        report.statuses[bucket] = report.statuses.get(bucket, 0) + 1
        kind = item["payload"].get("kind", "?")
        report.kinds[kind] = report.kinds.get(kind, 0) + 1
        try:
            parsed = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            parsed = {}
        outcome = parsed.get("cache") if isinstance(parsed, dict) else None
        if isinstance(outcome, str):
            report.cache_outcomes[outcome] = (
                report.cache_outcomes.get(outcome, 0) + 1
            )

    await asyncio.gather(
        *(fire(index, item) for index, item in enumerate(plan))
    )
    report.wall_seconds = time.perf_counter() - started
    try:
        status, body = await _http_get(
            config.host, config.port, "/v1/stats", config.timeout_seconds
        )
        if status == 200:
            report.server_stats = json.loads(body)
    except (OSError, asyncio.TimeoutError, ServeError):
        pass  # the client-side report still stands
    return report
