"""Software (process-level) availability parameters — section VI.A.

The SW-centric models distinguish two process availabilities:

* ``A = F/(F+R)`` — a process under supervisor control (auto-restarted in
  the fast restart time ``R``),
* ``A_S = F/(F+R_S)`` — an unsupervised process requiring manual restart in
  time ``R_S`` (the *supervisor* itself, *redis*, the Database processes).

and two *restart scenarios* for the supervisor:

* :attr:`RestartScenario.NOT_REQUIRED` (option 1, optimistic upper bound) —
  a dead supervisor leaves its node-role running; the node-role is restarted
  hitlessly at the next maintenance window.
* :attr:`RestartScenario.REQUIRED` (option 2, realistic lower bound) — a
  dead supervisor forces the whole node-role down until it is restarted.

:meth:`SoftwareParams.effective_availability` reproduces the paper's ``A*``
calculations for both scenarios (the 0.99998 vs 0.9998 contrast of VI.A).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.controller.process import RestartMode
from repro.errors import ParameterError
from repro.units import check_positive, check_probability, scale_downtime


class RestartScenario(enum.Enum):
    """Whether the supervisor process is required for node-role operation."""

    NOT_REQUIRED = 1  #: option "1" — optimistic upper bound
    REQUIRED = 2  #: option "2" — realistic lower bound


@dataclass(frozen=True)
class SoftwareParams:
    """Process failure/restart times and the derived availabilities.

    Attributes:
        mtbf_hours: process mean time between failures, the paper's ``F``
            (default 5000 h).
        auto_restart_hours: mean time for a supervisor auto-restart, ``R``
            (default 0.1 h).
        manual_restart_hours: mean time for a manual restart, ``R_S``
            (default 1 h).
        maintenance_window_hours: for scenario 1, the mean exposure window
            between a supervisor failure and the next maintenance
            opportunity (the paper's "say 10 hour" interval).
    """

    mtbf_hours: float = 5000.0
    auto_restart_hours: float = 0.1
    manual_restart_hours: float = 1.0
    maintenance_window_hours: float = 10.0

    def __post_init__(self) -> None:
        check_positive(self.mtbf_hours, "mtbf_hours (F)")
        check_positive(self.auto_restart_hours, "auto_restart_hours (R)")
        check_positive(self.manual_restart_hours, "manual_restart_hours (R_S)")
        check_positive(
            self.maintenance_window_hours, "maintenance_window_hours"
        )

    # -- the two headline availabilities --------------------------------------

    @property
    def a_process(self) -> float:
        """``A = F/(F+R)`` — availability of a supervised process."""
        return self.mtbf_hours / (self.mtbf_hours + self.auto_restart_hours)

    @property
    def a_unsupervised(self) -> float:
        """``A_S = F/(F+R_S)`` — availability of a manually-restarted process."""
        return self.mtbf_hours / (self.mtbf_hours + self.manual_restart_hours)

    def availability(self, restart: RestartMode) -> float:
        """Per-process availability by restart mode (``A`` or ``A_S``)."""
        if restart is RestartMode.AUTO:
            return self.a_process
        return self.a_unsupervised

    def availability_map(self) -> dict[RestartMode, float]:
        """``{AUTO: A, MANUAL: A_S}`` — the map consumed by quorum units."""
        return {
            RestartMode.AUTO: self.a_process,
            RestartMode.MANUAL: self.a_unsupervised,
        }

    # -- section VI.A effective-availability analysis --------------------------

    def effective_restart_hours(self, scenario: RestartScenario) -> float:
        """The paper's ``R*``: actual mean restart time of a supervised process.

        Scenario 1: the process is auto-restarted unless it happens to fail
        during the window after its supervisor failed; with exponential
        failures the window-failure probability is ``1 - exp(-W/F)`` and
        ``R* = exp(-W/F) R + (1 - exp(-W/F)) R_S`` (paper: 0.102 h).

        Scenario 2: either the process or its supervisor failing causes a
        restart; with equal rates ``R* = (R + R_S)/2`` (paper: 0.55 h).
        """
        if scenario is RestartScenario.NOT_REQUIRED:
            survive = math.exp(
                -self.maintenance_window_hours / self.mtbf_hours
            )
            return (
                survive * self.auto_restart_hours
                + (1.0 - survive) * self.manual_restart_hours
            )
        return (self.auto_restart_hours + self.manual_restart_hours) / 2.0

    def effective_mtbf_hours(self, scenario: RestartScenario) -> float:
        """The paper's ``F*``: scenario 2 halves the failure interval.

        In scenario 2 a process restarts when either it or its supervisor
        fails; with equal exponential rates the combined interval is
        ``F/2``.  Scenario 1 leaves ``F`` unchanged.
        """
        if scenario is RestartScenario.NOT_REQUIRED:
            return self.mtbf_hours
        return self.mtbf_hours / 2.0

    def effective_availability(self, scenario: RestartScenario) -> float:
        """The paper's ``A* = F*/(F* + R*)``.

        Scenario 1 gives ``A* ~= A`` (supervisor failures barely matter);
        scenario 2 gives ``A* ~= A_S`` ("every process effectively inherits
        the supervisor availability").
        """
        f = self.effective_mtbf_hours(scenario)
        r = self.effective_restart_hours(scenario)
        return f / (f + r)

    # -- sweeps ----------------------------------------------------------------

    def scaled(self, orders_of_magnitude: float) -> "SoftwareParams":
        """Scale both ``A`` and ``A_S`` by orders of magnitude of downtime.

        This is the Figs. 4-5 x-axis: "A and A_S are varied in lock-step".
        Implemented by scaling the restart times (``R``, ``R_S``) by
        ``10**-x``, which scales both unavailabilities by ``10**-x`` exactly
        (since ``1 - A = R/(F+R)`` rescales with ``R`` up to a second-order
        term in ``R/F``); the residual second-order deviation is corrected
        by solving for the restart time that hits the target availability
        exactly.
        """
        target_a = scale_downtime(self.a_process, orders_of_magnitude)
        target_as = scale_downtime(self.a_unsupervised, orders_of_magnitude)
        if target_a <= 0.0 or target_as <= 0.0:
            raise ParameterError("scaling pushed availability to 0")
        # R such that F/(F+R) == target  =>  R = F (1-target)/target
        new_r = self.mtbf_hours * (1.0 - target_a) / target_a
        new_rs = self.mtbf_hours * (1.0 - target_as) / target_as
        return replace(
            self, auto_restart_hours=new_r, manual_restart_hours=new_rs
        )

    @classmethod
    def from_availabilities(
        cls,
        a_process: float,
        a_unsupervised: float,
        mtbf_hours: float = 5000.0,
    ) -> "SoftwareParams":
        """Construct from target availabilities instead of restart times."""
        check_probability(a_process, "a_process (A)")
        check_probability(a_unsupervised, "a_unsupervised (A_S)")
        if not 0.0 < a_process < 1.0 or not 0.0 < a_unsupervised < 1.0:
            raise ParameterError(
                "availabilities must be strictly inside (0, 1) to recover "
                "finite restart times"
            )
        return cls(
            mtbf_hours=mtbf_hours,
            auto_restart_hours=mtbf_hours * (1.0 - a_process) / a_process,
            manual_restart_hours=mtbf_hours
            * (1.0 - a_unsupervised)
            / a_unsupervised,
        )
