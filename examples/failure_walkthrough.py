"""Section III as executable scenarios.

The paper's failure-mode analysis is a narrative ("If control-1 fails ...
If control-2 then fails ..."); this example replays those narratives
against the deterministic scenario engine and the vRouter connection
model, printing what each plane does at every step.

Run with::

    python examples/failure_walkthrough.py
"""

from repro import RestartScenario, opencontrail_3x
from repro.sim.scenario import Injection, ScenarioRunner
from repro.sim.vrouter_connections import ControlEvent, VRouterConnectionModel
from repro.topology.reference import small_topology


def show(trace, times):
    print(f"  {'t':>5} {'CP':>5} {'SDP':>5} {'LDP':>5} {'DP':>5}")
    for t in times:
        states = [
            "up" if trace.state_at(plane, t) else "DOWN"
            for plane in ("cp", "sdp", "ldp", "dp")
        ]
        print(f"  {t:>5.1f} {states[0]:>5} {states[1]:>5} {states[2]:>5} {states[3]:>5}")
    print()


def main() -> None:
    spec = opencontrail_3x()
    topology = small_topology(spec)

    print("Scenario A: creeping Database quorum loss (supervisor required)\n")
    runner = ScenarioRunner.for_controller(
        spec, topology, scenario=RestartScenario.REQUIRED
    )
    trace = runner.run(
        [
            Injection(1.0, "sup:Database-1", "fail"),
            Injection(2.0, "proc:Database/kafka-2", "fail"),
            Injection(4.0, "sup:Database-1", "repair"),
        ],
        horizon=6.0,
    )
    print("  t=1 Database-1 supervisor dies (node-role killed)")
    print("  t=2 kafka-2 dies in another node -> 2-of-3 quorum lost")
    print("  t=4 supervisor manually restarted -> node-role auto-restarts\n")
    show(trace, (0.5, 1.5, 3.0, 5.0))

    print("Scenario B: losing all three control processes\n")
    runner = ScenarioRunner.for_controller(
        spec, topology, scenario=RestartScenario.REQUIRED
    )
    trace = runner.run(
        [
            Injection(1.0, "proc:Control/control-1", "fail"),
            Injection(2.0, "proc:Control/control-2", "fail"),
            Injection(3.0, "proc:Control/control-3", "fail"),
            Injection(4.0, "proc:Control/control-1", "repair"),
        ],
        horizon=6.0,
    )
    print("  one control left keeps every host DP alive; the third loss")
    print("  flushes BGP forwarding tables on every host\n")
    show(trace, (2.5, 3.5, 5.0))

    print("Scenario C: vRouter agent connection churn (1000 hosts)\n")
    model = VRouterConnectionModel(
        ("control-1", "control-2", "control-3"), hosts=1000
    )
    cases = {
        "control-1 fails alone": [ControlEvent(1.0, "control-1", False)],
        "control-1, then -2 an hour later": [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(2.0, "control-2", False),
        ],
        "control-1 and -2 simultaneously": [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.0, "control-2", False),
        ],
        "all three fail": [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.5, "control-2", False),
            ControlEvent(2.0, "control-3", False),
        ],
    }
    for label, events in cases.items():
        fraction = model.impacted_fraction(events, horizon=10.0)
        unavailability = model.dp_unavailability(events, horizon=8766.0)
        print(
            f"  {label:36} impacted hosts: {fraction:6.1%}   "
            f"DP unavailability over a year: {unavailability:.2e}"
        )
    print(
        "\nThe simultaneous-failure case touches exactly one-third of the\n"
        "hosts for about a minute — confirming the paper's decision to\n"
        "treat its availability impact as negligible."
    )


if __name__ == "__main__":
    main()
