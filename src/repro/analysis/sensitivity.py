"""Local sensitivity analysis.

The paper's sensitivity studies are visual (sweep figures); this module adds
the quantitative counterparts used by the ablation benchmarks and examples:

* :func:`local_sensitivity` — central-difference derivative of a model
  output with respect to one parameter,
* :func:`unavailability_elasticity` — percent change of system
  *unavailability* per percent change of a component's unavailability (the
  scale-free measure appropriate in the many-nines regime),
* :func:`hardware_tornado` — one-at-a-time ranking of the four hardware
  parameters by their downtime impact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.errors import ParameterError
from repro.params.hardware import HardwareParams
from repro.units import downtime_minutes_per_year


def local_sensitivity(
    fn: Callable[[float], float], at: float, step: float = 1e-6
) -> float:
    """Central-difference derivative ``d fn / d x`` at ``at``.

    The step is clipped so both evaluation points stay inside ``[0, 1]``
    when ``at`` is a probability near the boundary.
    """
    if step <= 0:
        raise ParameterError(f"step must be > 0, got {step}")
    lo = max(0.0, at - step)
    hi = min(1.0, at + step)
    if hi == lo:
        raise ParameterError("degenerate differentiation interval")
    return (fn(hi) - fn(lo)) / (hi - lo)


def unavailability_elasticity(
    fn: Callable[[float], float], at: float, factor: float = 2.0
) -> float:
    """Elasticity of system unavailability to a component's unavailability.

    Evaluates the model at component availability ``at`` and at the
    availability whose downtime is ``factor``x larger, and returns::

        log(U_sys(worse) / U_sys(base)) / log(factor)

    An elasticity of 1 means the component contributes linearly (a series
    element); 2 means it only matters in pairs (a redundant element); 0
    means it is masked entirely.
    """
    if not 0.0 < at < 1.0:
        raise ParameterError("component availability must be in (0, 1)")
    if factor <= 1.0:
        raise ParameterError(f"factor must exceed 1, got {factor}")
    import math

    worse = 1.0 - (1.0 - at) * factor
    if worse <= 0.0:
        raise ParameterError("factor pushes component availability below 0")
    u_base = 1.0 - fn(at)
    u_worse = 1.0 - fn(worse)
    if u_base <= 0.0 or u_worse <= 0.0:
        raise ParameterError(
            "system unavailability must be positive to compute elasticity"
        )
    return math.log(u_worse / u_base) / math.log(factor)


def hardware_tornado(
    model: Callable[[HardwareParams], float],
    params: HardwareParams,
    downtime_factor: float = 10.0,
) -> dict[str, float]:
    """Added downtime (minutes/year) from degrading each HW parameter alone.

    Each of ``a_role``, ``a_vm``, ``a_host``, ``a_rack`` is degraded to
    ``downtime_factor`` times its downtime, one at a time; the result maps
    the parameter name to the increase in annual system downtime.  Sorting
    the items descending yields the tornado chart ordering.
    """
    if downtime_factor <= 1.0:
        raise ParameterError(
            f"downtime_factor must exceed 1, got {downtime_factor}"
        )
    base_downtime = downtime_minutes_per_year(model(params))
    impacts: dict[str, float] = {}
    for name in ("a_role", "a_vm", "a_host", "a_rack"):
        value = getattr(params, name)
        degraded_value = 1.0 - (1.0 - value) * downtime_factor
        if degraded_value < 0.0:
            raise ParameterError(
                f"downtime_factor {downtime_factor} pushes {name} below 0"
            )
        degraded = replace(params, **{name: degraded_value})
        impacts[name] = (
            downtime_minutes_per_year(model(degraded)) - base_downtime
        )
    return impacts
