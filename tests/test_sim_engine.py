"""Tests for the availability simulator core (repro.sim.engine).

Small, analytically-solvable component systems with long horizons; the
simulated availabilities must land near the closed-form steady states.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind


def single(lam=0.1, mttr=1.0):
    return Component(
        key="x",
        kind=ComponentKind.PROCESS,
        failure_rate=lam,
        repair_mean=mttr,
    )


class TestSingleComponent:
    def test_steady_state_availability(self):
        sim = AvailabilitySimulator([single(lam=0.1, mttr=1.0)], seed=11)
        sim.add_signal("x", lambda s: s.effectively_up("x"))
        sim.run(horizon=60_000.0, batches=10)
        expected = 10.0 / 11.0  # MTBF / (MTBF + MTTR)
        assert sim.availability("x") == pytest.approx(expected, abs=0.01)

    def test_never_failing_component(self):
        component = Component(
            key="solid",
            kind=ComponentKind.RACK,
            failure_rate=0.0,
            repair_mean=1.0,
        )
        sim = AvailabilitySimulator([component], seed=1)
        sim.add_signal("s", lambda s: s.effectively_up("solid"))
        sim.run(horizon=100.0, batches=2)
        assert sim.availability("s") == 1.0

    def test_reproducible_across_seeds(self):
        results = []
        for _ in range(2):
            sim = AvailabilitySimulator([single()], seed=5)
            sim.add_signal("x", lambda s: s.effectively_up("x"))
            sim.run(horizon=1000.0, batches=2)
            results.append(sim.availability("x"))
        assert results[0] == results[1]


class TestDependencyMasking:
    def build_chain(self, seed=3):
        parent = Component(
            key="host",
            kind=ComponentKind.HOST,
            failure_rate=0.05,
            repair_mean=1.0,
        )
        child = Component(
            key="proc",
            kind=ComponentKind.PROCESS,
            failure_rate=0.1,
            repair_mean=0.5,
            dependencies=("host",),
        )
        return AvailabilitySimulator([parent, child], seed=seed)

    def test_child_unavailability_is_product(self):
        # With the child's clock paused while the parent is down, the
        # steady-state joint availability is the product A_parent A_child.
        sim = self.build_chain()
        sim.add_signal("chain", lambda s: s.effectively_up("proc"))
        sim.run(horizon=100_000.0, batches=10)
        a_parent = (1 / 0.05) / (1 / 0.05 + 1.0)
        a_child = (1 / 0.1) / (1 / 0.1 + 0.5)
        assert sim.availability("chain") == pytest.approx(
            a_parent * a_child, abs=0.005
        )

    def test_child_down_when_parent_down(self):
        sim = self.build_chain()
        sim.components["host"].state = sim.components["host"].state.__class__(
            "repairing"
        )
        assert not sim.effectively_up("proc")

    def test_unknown_dependency_rejected(self):
        orphan = Component(
            key="orphan",
            kind=ComponentKind.PROCESS,
            failure_rate=0.1,
            repair_mean=1.0,
            dependencies=("ghost",),
        )
        with pytest.raises(SimulationError):
            AvailabilitySimulator([orphan], seed=1)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SimulationError):
            AvailabilitySimulator([single(), single()], seed=1)


class TestRepairPolicy:
    def test_dynamic_repair_time(self):
        # A policy giving 10x slower repairs should show ~10x downtime.
        fast = AvailabilitySimulator(
            [single(lam=0.01, mttr=1.0)],
            seed=9,
            repair_policy=lambda c: 0.2,
        )
        fast.add_signal("x", lambda s: s.effectively_up("x"))
        fast.run(horizon=200_000.0, batches=5)
        slow = AvailabilitySimulator(
            [single(lam=0.01, mttr=1.0)],
            seed=9,
            repair_policy=lambda c: 2.0,
        )
        slow.add_signal("x", lambda s: s.effectively_up("x"))
        slow.run(horizon=200_000.0, batches=5)
        ratio = (1 - slow.availability("x")) / (1 - fast.availability("x"))
        assert ratio == pytest.approx(10.0, rel=0.25)


class TestRunValidation:
    def test_bad_horizon_rejected(self):
        sim = AvailabilitySimulator([single()], seed=1)
        with pytest.raises(SimulationError):
            sim.run(horizon=0.0)

    def test_bad_batches_rejected(self):
        sim = AvailabilitySimulator([single()], seed=1)
        with pytest.raises(SimulationError):
            sim.run(horizon=10.0, batches=0)

    def test_unknown_signal_rejected(self):
        sim = AvailabilitySimulator([single()], seed=1)
        sim.run(horizon=10.0, batches=2)
        with pytest.raises(SimulationError):
            sim.availability("nope")

    def test_batch_count(self):
        sim = AvailabilitySimulator([single()], seed=2)
        sim.add_signal("x", lambda s: s.effectively_up("x"))
        sim.run(horizon=100.0, batches=7)
        assert len(sim.batch_availabilities("x")) == 7
