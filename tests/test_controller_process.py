"""Tests for process specifications (repro.controller.process)."""

import pytest

from repro.controller.process import (
    ProcessKind,
    ProcessSpec,
    RestartMode,
    nodemgr,
    supervisor,
)
from repro.errors import SpecError


class TestProcessSpec:
    def test_basic_construction(self):
        p = ProcessSpec("control", RestartMode.AUTO, cp_quorum=1, dp_quorum=1)
        assert p.name == "control"
        assert p.kind is ProcessKind.REGULAR

    def test_rejects_empty_name(self):
        with pytest.raises(SpecError):
            ProcessSpec("", RestartMode.AUTO)

    def test_rejects_negative_quorum(self):
        with pytest.raises(SpecError):
            ProcessSpec("x", RestartMode.AUTO, cp_quorum=-1)

    def test_group_requires_dp_quorum(self):
        with pytest.raises(SpecError):
            ProcessSpec("dns", RestartMode.AUTO, dp_quorum=0, dp_group="ctl")

    def test_group_with_quorum_accepted(self):
        p = ProcessSpec("dns", RestartMode.AUTO, dp_quorum=1, dp_group="ctl")
        assert p.dp_group == "ctl"

    def test_supervisor_must_be_zero_of_n(self):
        with pytest.raises(SpecError):
            ProcessSpec(
                "supervisor",
                RestartMode.MANUAL,
                cp_quorum=1,
                kind=ProcessKind.SUPERVISOR,
            )

    def test_frozen(self):
        p = ProcessSpec("x", RestartMode.AUTO)
        with pytest.raises(AttributeError):
            p.name = "y"


class TestCommonProcesses:
    def test_supervisor_is_manual(self):
        s = supervisor()
        assert s.kind is ProcessKind.SUPERVISOR
        assert s.restart is RestartMode.MANUAL
        assert s.cp_quorum == 0 and s.dp_quorum == 0

    def test_nodemgr_is_auto(self):
        n = nodemgr()
        assert n.kind is ProcessKind.NODEMGR
        assert n.restart is RestartMode.AUTO
