"""Unit tests for the fault-injection hazard models (:mod:`repro.faults.hazards`).

Everything here runs on tiny hand-built simulators with deterministic
repair sampling (``lambda rng, name, mean: mean``) or on the small
reference deployment, so the semantics — FIFO crews, beta-factor rate
splitting, maintenance holds, group resolution — are checked exactly,
without Monte-Carlo noise.
"""

from __future__ import annotations

import pytest

from repro.errors import CampaignError, SimulationError
from repro.faults.hazards import (
    CommonCauseSpec,
    MaintenanceSpec,
    RackPowerSpec,
    RepairCrews,
    RepairCrewsSpec,
    attach_hazards,
    hazard_from_dict,
    hazard_to_dict,
)
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.sim.controller_sim import SimulationConfig, build_simulator
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind, ComponentState
from repro.sim.scenario import Injection, ScenarioRunner

S2 = RestartScenario.REQUIRED

STRESSED_HW = HardwareParams(a_role=1.0, a_vm=0.998, a_host=0.998, a_rack=0.999)
STRESSED_SW = SoftwareParams.from_availabilities(0.995, 0.95, mtbf_hours=100.0)


def _config(seed: int = 7, horizon: float = 1500.0) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        horizon_hours=horizon,
        batches=2,
        rack_mtbf_hours=2000.0,
        host_mtbf_hours=1000.0,
        vm_mtbf_hours=500.0,
    )


def _small_simulator(spec, small, seed: int = 7) -> AvailabilitySimulator:
    return build_simulator(
        spec, small, STRESSED_HW, STRESSED_SW, S2, _config(seed)
    )


def _static_simulator(
    keys: tuple[str, ...], controller=None
) -> AvailabilitySimulator:
    """A simulator whose components never fail stochastically.

    Repairs take exactly ``repair_mean`` hours (deterministic sampler), so
    repair completion times are exact arithmetic.
    """
    components = [
        Component(
            key=key,
            kind=ComponentKind.HOST,
            failure_rate=0.0,
            repair_mean=1.0,
        )
        for key in keys
    ]
    return AvailabilitySimulator(
        components,
        seed=1,
        repair_sampler=lambda rng, name, mean: mean,
        repair_controller=controller,
    )


class TestSpecValidation:
    def test_common_cause_beta_bounds(self):
        CommonCauseSpec("kind:vm", 0.0)
        CommonCauseSpec("kind:vm", 1.0)
        with pytest.raises(CampaignError):
            CommonCauseSpec("kind:vm", -0.1)
        with pytest.raises(CampaignError):
            CommonCauseSpec("kind:vm", 1.1)
        with pytest.raises(CampaignError):
            CommonCauseSpec("", 0.5)

    def test_rack_power_mtbf_positive(self):
        with pytest.raises(CampaignError):
            RackPowerSpec(mtbf_hours=0.0)
        with pytest.raises(CampaignError):
            RackPowerSpec(mtbf_hours=-5.0)

    def test_maintenance_window_geometry(self):
        with pytest.raises(CampaignError):
            MaintenanceSpec("host:H1", start_hours=-1.0,
                            period_hours=10.0, duration_hours=1.0)
        with pytest.raises(CampaignError):
            MaintenanceSpec("host:H1", start_hours=0.0,
                            period_hours=10.0, duration_hours=0.0)
        # The period must exceed the duration, else the window never closes.
        with pytest.raises(CampaignError):
            MaintenanceSpec("host:H1", start_hours=0.0,
                            period_hours=1.0, duration_hours=1.0)
        with pytest.raises(CampaignError):
            MaintenanceSpec("", start_hours=0.0,
                            period_hours=10.0, duration_hours=1.0)
        window = MaintenanceSpec("host:H1", start_hours=0.0,
                                 period_hours=10.0, duration_hours=2.5)
        assert window.duty_fraction == pytest.approx(0.25)

    def test_repair_crews_at_least_one(self):
        with pytest.raises(CampaignError):
            RepairCrewsSpec(0)
        with pytest.raises(CampaignError):
            RepairCrews(0)


class TestSpecSerialization:
    @pytest.mark.parametrize(
        "spec",
        [
            CommonCauseSpec("role:Database", 0.25),
            RackPowerSpec(mtbf_hours=4000.0, racks=("rack:R1",)),
            MaintenanceSpec("host:H2", start_hours=100.0,
                            period_hours=500.0, duration_hours=25.0),
            RepairCrewsSpec(2),
        ],
        ids=lambda spec: spec.kind,
    )
    def test_round_trip(self, spec):
        record = hazard_to_dict(spec)
        assert record["kind"] == spec.kind
        assert hazard_from_dict(record) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError, match="unknown hazard kind"):
            hazard_from_dict({"kind": "meteor_strike"})

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError, match="unknown field"):
            hazard_from_dict(
                {"kind": "common_cause", "group": "kind:vm",
                 "beta": 0.1, "gamma": 0.2}
            )

    def test_missing_field_rejected(self):
        with pytest.raises(CampaignError, match="invalid"):
            hazard_from_dict({"kind": "common_cause", "group": "kind:vm"})


class TestResolveGroup:
    def test_exact_key(self, spec, small):
        simulator = _small_simulator(spec, small)
        assert simulator.resolve_group("host:H1") == ("host:H1",)

    def test_subtree(self, spec, small):
        simulator = _small_simulator(spec, small)
        keys = simulator.resolve_group("rack:R1/*")
        assert keys[0] == "rack:R1"
        assert "host:H1" in keys
        # Everything except the off-rack vRouter compute node (local:*)
        # sits on the single rack of the small deployment.
        assert set(keys) == {
            key for key in simulator.components
            if not key.startswith("local:")
        }

    def test_role(self, spec, small):
        simulator = _small_simulator(spec, small)
        keys = simulator.resolve_group("role:Control")
        assert keys
        assert all(
            key.startswith("sup:Control-") or key.startswith("proc:Control/")
            for key in keys
        )

    def test_kind(self, spec, small):
        simulator = _small_simulator(spec, small)
        keys = simulator.resolve_group("kind:vm")
        assert keys
        assert all(
            simulator.components[key].kind is ComponentKind.VM for key in keys
        )

    def test_unresolvable_selector(self, spec, small):
        simulator = _small_simulator(spec, small)
        for selector in ("host:NOPE", "role:NoSuchRole", "kind:toaster", ""):
            with pytest.raises(SimulationError):
                simulator.resolve_group(selector)

    def test_empty_match_and_unknown_selector_are_distinguished(
        self, spec, small
    ):
        """A well-formed selector that matches nothing reads differently
        from one the grammar cannot interpret at all."""
        simulator = _small_simulator(spec, small)
        with pytest.raises(SimulationError, match="matched no components"):
            simulator.resolve_group("role:NoSuchRole")
        with pytest.raises(
            SimulationError, match="is not a component kind"
        ):
            simulator.resolve_group("kind:toaster")
        with pytest.raises(
            SimulationError, match="cannot resolve component or group"
        ):
            simulator.resolve_group("host:NOPE")


class TestScenarioGroupInjections:
    def test_role_injection_drops_and_restores_cp(self, spec, small):
        runner = ScenarioRunner.for_controller(spec, small, scenario=S2)
        trace = runner.run(
            [
                Injection(5.0, "role:Control", "fail"),
                Injection(10.0, "role:Control", "repair"),
            ],
            horizon=20.0,
        )
        assert trace.state_at("cp", 4.0)
        assert not trace.state_at("cp", 7.0)
        assert trace.state_at("cp", 12.0)

    def test_subtree_injection_drops_everything(self, spec, small):
        runner = ScenarioRunner.for_controller(spec, small, scenario=S2)
        trace = runner.run(
            [
                Injection(5.0, "rack:R1/*", "fail"),
                Injection(10.0, "rack:R1/*", "repair"),
            ],
            horizon=20.0,
        )
        # The local DP rides on the off-rack compute node, so only the
        # controller-hosted planes go down with the rack.
        for signal in ("cp", "sdp", "dp"):
            assert not trace.state_at(signal, 7.0)
            assert trace.state_at(signal, 12.0)
        assert trace.state_at("ldp", 7.0)

    def test_unknown_target_raises(self, spec, small):
        runner = ScenarioRunner.for_controller(spec, small, scenario=S2)
        with pytest.raises(SimulationError):
            runner.run([Injection(1.0, "host:NOPE", "fail")], horizon=5.0)


class TestRepairCrews:
    def test_fifo_serialization(self):
        controller = RepairCrews(1)
        simulator = _static_simulator(("a", "b", "c"), controller)
        for key in ("a", "b", "c"):
            simulator.force_fail(key, repair=True)
        assert controller.active_repairs == 1
        assert controller.queue_depth == 2

        observed: list[tuple[float, tuple[str, ...]]] = []

        def probe() -> None:
            up = tuple(
                key for key in ("a", "b", "c")
                if simulator.components[key].state is ComponentState.UP
            )
            observed.append((simulator.now, up))

        for when in (0.5, 1.5, 2.5, 3.5):
            simulator.schedule_action(when, probe)
        simulator.run(5.0, batches=1)

        # One crew, 1h deterministic repairs, FIFO: a at t=1, b at 2, c at 3.
        assert observed == [
            (0.5, ()),
            (1.5, ("a",)),
            (2.5, ("a", "b")),
            (3.5, ("a", "b", "c")),
        ]
        assert controller.total_queued == 2
        assert controller.max_queue_depth == 2
        assert controller.queue_depth == 0
        assert controller.active_repairs == 0

    def test_forced_repair_drops_queue_entry(self):
        controller = RepairCrews(1)
        simulator = _static_simulator(("a", "b"), controller)
        simulator.force_fail("a", repair=True)
        simulator.force_fail("b", repair=True)
        assert controller.queue_depth == 1
        simulator.force_repair("b")  # repaired while still waiting
        assert controller.queue_depth == 0
        assert simulator.components["b"].state is ComponentState.UP

    def test_begin_repair_requires_down_component(self):
        simulator = _static_simulator(("a",))
        with pytest.raises(SimulationError):
            simulator.begin_repair("a")


class TestCommonCause:
    def test_beta_zero_is_bit_identical(self, spec, small):
        from repro.sim.controller_sim import collect_result

        horizon = 1500.0
        baseline = _small_simulator(spec, small, seed=11)
        baseline.run(horizon, batches=2)
        plain = collect_result(baseline, horizon)

        hazarded = _small_simulator(spec, small, seed=11)
        hazard_set = attach_hazards(
            hazarded, (CommonCauseSpec("kind:vm", beta=0.0),)
        )
        hazarded.run(horizon, batches=2)
        traced = collect_result(hazarded, horizon)

        assert (traced.cp, traced.shared_dp, traced.local_dp, traced.dp) == (
            plain.cp, plain.shared_dp, plain.local_dp, plain.dp,
        )
        assert hazard_set.stats()["injections"]["common_cause"] == 0

    def test_beta_one_moves_all_intensity_to_common_cause(self, spec, small):
        simulator = _small_simulator(spec, small)
        keys = simulator.resolve_group("kind:vm")
        original = [simulator.components[key].failure_rate for key in keys]
        hazard_set = attach_hazards(
            simulator, (CommonCauseSpec("kind:vm", beta=1.0),)
        )
        assert all(
            simulator.components[key].failure_rate == 0.0 for key in keys
        )
        process = hazard_set.processes[0]
        assert process._rate == pytest.approx(sum(original) / len(original))

    def test_partial_beta_scales_member_rates(self, spec, small):
        simulator = _small_simulator(spec, small)
        keys = simulator.resolve_group("kind:vm")
        original = {
            key: simulator.components[key].failure_rate for key in keys
        }
        attach_hazards(simulator, (CommonCauseSpec("kind:vm", beta=0.25),))
        for key in keys:
            assert simulator.components[key].failure_rate == pytest.approx(
                0.75 * original[key]
            )


class TestMaintenance:
    def test_windows_are_deterministic(self):
        simulator = _static_simulator(("host:A",))
        spec = MaintenanceSpec(
            "host:A", start_hours=2.0, period_hours=5.0, duration_hours=1.0
        )
        hazard_set = attach_hazards(simulator, (spec,))

        observed: list[tuple[float, bool]] = []

        def probe() -> None:
            observed.append(
                (simulator.now, simulator.effectively_up("host:A"))
            )

        # Windows: [2, 3) and [7, 8); probes bracket both edges.
        for when in (1.5, 2.5, 3.5, 6.5, 7.5, 8.5):
            simulator.schedule_action(when, probe)
        simulator.run(10.0, batches=1)

        assert observed == [
            (1.5, True), (2.5, False), (3.5, True),
            (6.5, True), (7.5, False), (8.5, True),
        ]
        assert hazard_set.stats()["injections"]["maintenance"] == 2

    def test_hold_cancels_pending_repair(self):
        simulator = _static_simulator(("host:A",))
        attach_hazards(
            simulator,
            (
                MaintenanceSpec(
                    "host:A", start_hours=0.5,
                    period_hours=10.0, duration_hours=2.0,
                ),
            ),
        )
        # Stochastic-style failure at t=0 schedules a 1h repair (t=1), but
        # the window opening at t=0.5 must pin the host down until t=2.5.
        simulator.force_fail("host:A", repair=True)

        observed: list[tuple[float, bool]] = []

        def probe() -> None:
            observed.append(
                (simulator.now, simulator.effectively_up("host:A"))
            )

        for when in (1.5, 2.0, 3.0):
            simulator.schedule_action(when, probe)
        simulator.run(5.0, batches=1)

        assert observed == [(1.5, False), (2.0, False), (3.0, True)]


class TestAttachHazards:
    def test_rack_power_rejects_non_rack_target(self, spec, small):
        simulator = _small_simulator(spec, small)
        with pytest.raises(CampaignError, match="not a rack"):
            attach_hazards(
                simulator,
                (RackPowerSpec(mtbf_hours=100.0, racks=("host:H1",)),),
            )

    def test_rack_power_defaults_to_all_racks(self, spec, small):
        simulator = _small_simulator(spec, small)
        hazard_set = attach_hazards(
            simulator, (RackPowerSpec(mtbf_hours=100.0),)
        )
        process = hazard_set.processes[0]
        assert len(process._groups) == len(
            simulator.resolve_group("kind:rack")
        )

    def test_crews_spec_installs_controller(self, spec, small):
        simulator = _small_simulator(spec, small)
        hazard_set = attach_hazards(simulator, (RepairCrewsSpec(2),))
        assert hazard_set.controller is simulator.repair_controller
        assert hazard_set.controller.crews == 2

    def test_explicit_crews_argument_wins(self, spec, small):
        simulator = _small_simulator(spec, small)
        hazard_set = attach_hazards(
            simulator, (RepairCrewsSpec(2),), crews=5
        )
        assert hazard_set.controller.crews == 5

    def test_stats_without_controller(self, spec, small):
        simulator = _small_simulator(spec, small)
        hazard_set = attach_hazards(simulator, ())
        stats = hazard_set.stats()
        assert stats == {
            "injections": {},
            "repair_max_queue_depth": 0,
            "repair_total_queued": 0,
        }
