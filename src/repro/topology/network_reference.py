"""Reference control-network graphs.

Four canonical graphs for the :mod:`repro.network` analyses, spanning the
shapes the literature reasons about: a no-redundancy *line*, a
single-redundant *ring*, a *fat-tree pod* whose controller uplinks share a
conduit (a shared-risk group), and a Nencioni-style *backbone* mesh with
two controller sites and SRG-correlated long-haul links.  Default element
availabilities follow the :mod:`repro.params.defaults` convention
(steady-state probabilities), at values typical for carrier-grade gear:
switches 0.9999, routers/sites 0.99995, links 0.9995, conduits 0.9999.

Builders are registered in :data:`NETWORK_REFERENCE_BUILDERS` and looked
up by :func:`reference_network` — the CLI's ``--graph`` names.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.network.graph import (
    NetworkGraph,
    NetworkLink,
    NetworkNode,
    SharedRiskGroup,
)

__all__ = [
    "line_network",
    "ring_network",
    "fat_tree_pod",
    "backbone_network",
    "NETWORK_REFERENCE_BUILDERS",
    "reference_network",
]

SWITCH_AVAILABILITY = 0.9999
ROUTER_AVAILABILITY = 0.99995
SITE_AVAILABILITY = 0.99995
LINK_AVAILABILITY = 0.9995
SRG_AVAILABILITY = 0.9999


def _switch(name: str, availability: float = SWITCH_AVAILABILITY) -> NetworkNode:
    return NetworkNode(name, kind="switch", availability=availability)


def _router(name: str, availability: float = ROUTER_AVAILABILITY) -> NetworkNode:
    return NetworkNode(name, kind="router", availability=availability)


def _site(name: str, availability: float = SITE_AVAILABILITY) -> NetworkNode:
    return NetworkNode(name, kind="site", availability=availability)


def _link(
    name: str,
    a: str,
    b: str,
    availability: float = LINK_AVAILABILITY,
    srg: str | None = None,
) -> NetworkLink:
    return NetworkLink(name, a, b, availability=availability, srg=srg)


def line_network(switches: int = 4) -> NetworkGraph:
    """A daisy chain: CTRL - S1 - S2 - ... - Sn.

    No redundancy anywhere — every element on the chain is an order-1 cut
    for the switches behind it, so per-switch availability degrades with
    distance from the controller.  The smallest useful worst case.
    """
    if switches < 1:
        raise TopologyError(f"line needs >= 1 switch, got {switches}")
    nodes = [_site("CTRL")]
    links = []
    previous = "CTRL"
    for i in range(1, switches + 1):
        name = f"S{i}"
        nodes.append(_switch(name))
        links.append(_link(f"L{i}", previous, name))
        previous = name
    return NetworkGraph(
        name=f"line-{switches}", nodes=tuple(nodes), links=tuple(links)
    )


def ring_network(switches: int = 6) -> NetworkGraph:
    """A switch ring with the controller site dual-homed into it.

    ``S1..Sn`` form a ring; CTRL attaches to S1 and S2.  Every switch has
    two disjoint paths to the site, so all minimal cut sets have order >= 1
    only through CTRL itself or double failures — the canonical
    single-redundant metro topology.
    """
    if switches < 3:
        raise TopologyError(f"ring needs >= 3 switches, got {switches}")
    nodes = [_site("CTRL")] + [_switch(f"S{i}") for i in range(1, switches + 1)]
    links = [
        _link(f"L{i}", f"S{i}", f"S{i % switches + 1}")
        for i in range(1, switches + 1)
    ]
    links.append(_link("LC1", "CTRL", "S1"))
    links.append(_link("LC2", "CTRL", "S2"))
    return NetworkGraph(
        name=f"ring-{switches}", nodes=tuple(nodes), links=tuple(links)
    )


def fat_tree_pod() -> NetworkGraph:
    """One fat-tree pod: edge switches, aggregation routers, one site.

    Edge switches E1/E2 dual-home into aggregation routers A1/A2; the
    controller site uplinks to both aggregations, but both uplinks run
    through one conduit (``SRG-UPLINK``) — the classic hidden correlated
    failure: the pod looks dual-homed yet one backhoe cut severs control.
    """
    nodes = (
        _site("CTRL"),
        _router("A1"),
        _router("A2"),
        _switch("E1"),
        _switch("E2"),
    )
    srgs = (SharedRiskGroup("SRG-UPLINK", availability=SRG_AVAILABILITY),)
    links = (
        _link("LE11", "E1", "A1"),
        _link("LE12", "E1", "A2"),
        _link("LE21", "E2", "A1"),
        _link("LE22", "E2", "A2"),
        _link("LU1", "A1", "CTRL", srg="SRG-UPLINK"),
        _link("LU2", "A2", "CTRL", srg="SRG-UPLINK"),
    )
    return NetworkGraph(
        name="fat-tree-pod", nodes=nodes, links=links, srgs=srgs
    )


def backbone_network() -> NetworkGraph:
    """A Nencioni-style national backbone with two controller sites.

    Five backbone routers in a ring with one chord, three access switches
    hanging off distinct routers, and controller sites at R1 and R4 (the
    dual-controller deployment of the Nencioni availability study).  The
    two long-haul links ``LB2``/``LB5`` share a conduit (``SRG-HAUL``),
    modeling the real-world duct sharing that motivated their
    correlated-failure extension.
    """
    nodes = (
        _site("CTRL1"),
        _site("CTRL2"),
        _router("R1"),
        _router("R2"),
        _router("R3"),
        _router("R4"),
        _router("R5"),
        _switch("SW1"),
        _switch("SW2"),
        _switch("SW3"),
    )
    srgs = (SharedRiskGroup("SRG-HAUL", availability=SRG_AVAILABILITY),)
    links = (
        _link("LB1", "R1", "R2"),
        _link("LB2", "R2", "R3", srg="SRG-HAUL"),
        _link("LB3", "R3", "R4"),
        _link("LB4", "R4", "R5"),
        _link("LB5", "R5", "R1", srg="SRG-HAUL"),
        _link("LB6", "R2", "R4"),
        _link("LA1", "SW1", "R2"),
        _link("LA2", "SW2", "R3"),
        _link("LA3", "SW3", "R5"),
        _link("LC1", "CTRL1", "R1"),
        _link("LC2", "CTRL2", "R4"),
    )
    return NetworkGraph(
        name="backbone-mesh", nodes=nodes, links=links, srgs=srgs
    )


NETWORK_REFERENCE_BUILDERS = {
    "line": line_network,
    "ring": ring_network,
    "fat_tree": fat_tree_pod,
    "backbone": backbone_network,
}


def reference_network(name: str, **kwargs) -> NetworkGraph:
    """Build a reference network graph by registry name."""
    try:
        builder = NETWORK_REFERENCE_BUILDERS[name]
    except KeyError:
        raise TopologyError(
            f"unknown reference network {name!r}; expected one of "
            f"{sorted(NETWORK_REFERENCE_BUILDERS)}"
        ) from None
    return builder(**kwargs)
