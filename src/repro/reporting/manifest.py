"""JSON and CSV serialization of run manifests.

The manifest *object* lives in :mod:`repro.obs.manifest`; this module owns
the file formats, next to the other reporting writers:

* :func:`write_manifest_json` — the canonical lossless form (what the
  CLI's global ``--trace`` flag writes);
* :func:`write_manifest_csv` — a flat ``section,name,value`` table for
  spreadsheet-side auditing of many runs;
* :func:`write_spans_csv` — the span records alone, one row per completed
  span, for external flame-graph/profile tooling.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.manifest import RunManifest
from repro.reporting.csvout import write_csv

__all__ = ["write_manifest_json", "write_manifest_csv", "write_spans_csv"]


def write_manifest_json(path: str | Path, manifest: RunManifest) -> Path:
    """Write the manifest as JSON (parent directories created)."""
    return manifest.write(path)


def _flat_rows(manifest: RunManifest) -> list[tuple[str, str, object]]:
    rows: list[tuple[str, str, object]] = [
        ("run", "command", manifest.command),
        ("run", "package_version", manifest.package_version),
        ("run", "schema_version", manifest.schema_version),
        ("run", "params_hash", manifest.params_hash),
        ("run", "topology", manifest.topology or ""),
        ("run", "solver_path", " -> ".join(manifest.solver_path)),
    ]
    rows += [
        ("argument", name, manifest.arguments[name])
        for name in sorted(manifest.arguments)
    ]
    rows += [
        ("seed", name, manifest.seed[name]) for name in sorted(manifest.seed)
    ]
    rows += [
        ("phase", phase.name, phase.seconds) for phase in manifest.phases
    ]
    counters = manifest.metrics.get("counters", {})
    rows += [
        ("counter", name, counters[name]) for name in sorted(counters)
    ]
    gauges = manifest.metrics.get("gauges", {})
    rows += [("gauge", name, gauges[name]) for name in sorted(gauges)]
    histograms = manifest.metrics.get("histograms", {})
    for name in sorted(histograms):
        summary = histograms[name]
        for stat in ("count", "total", "mean", "min", "max"):
            if stat in summary:  # empty histograms carry count only
                rows.append(("histogram", f"{name}.{stat}", summary[stat]))
    return rows


def write_manifest_csv(path: str | Path, manifest: RunManifest) -> Path:
    """Write the manifest as a flat ``section,name,value`` CSV."""
    return write_csv(path, ("section", "name", "value"), _flat_rows(manifest))


def write_spans_csv(path: str | Path, manifest: RunManifest) -> Path:
    """Write one CSV row per completed span (profile/flame-graph input)."""
    rows = [
        (
            span["name"],
            span["start"],
            span["duration"],
            span["depth"],
            span["parent"] or "",
        )
        for span in manifest.spans
    ]
    return write_csv(
        path, ("name", "start_s", "duration_s", "depth", "parent"), rows
    )
