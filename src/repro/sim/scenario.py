"""Deterministic failure-injection scenarios.

Section III of the paper is a narrative failure-mode walkthrough ("If
*control-1* fails ... If *control-2* then fails ...").  This module turns
those narratives into executable, assertable scenarios: a frozen (no
random failures) controller simulation driven by an explicit injection
schedule, with the plane signals recorded at every step.

Typical use::

    runner = ScenarioRunner.for_controller(
        spec, topology, scenario=RestartScenario.REQUIRED
    )
    trace = runner.run(
        [
            Injection(10.0, "sup:Database-1", "fail"),
            Injection(12.0, "proc:Database/kafka-1", "fail"),
            Injection(20.0, "sup:Database-1", "repair"),
        ],
        horizon=30.0,
    )
    assert not trace.state_at("cp", 15.0)   # quorum lost
    assert trace.state_at("cp", 25.0)       # supervisor restart restored it
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.controller.spec import ControllerSpec
from repro.errors import SimulationError
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.sim.controller_sim import SimulationConfig, build_simulator
from repro.sim.engine import AvailabilitySimulator
from repro.topology.deployment import DeploymentTopology


@dataclass(frozen=True)
class Injection:
    """One scheduled intervention: fail or repair a component."""

    time: float
    component: str
    kind: str  # "fail" | "repair"

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "repair"):
            raise SimulationError(
                f"injection kind must be 'fail' or 'repair', got {self.kind!r}"
            )
        if self.time < 0:
            raise SimulationError(f"injection time must be >= 0, got {self.time}")


@dataclass
class ScenarioTrace:
    """Signal transitions observed during a scenario run."""

    transitions: dict[str, list[tuple[float, bool]]] = field(
        default_factory=dict
    )
    horizon: float = 0.0

    def record(self, time: float, name: str, state: bool) -> None:
        history = self.transitions.setdefault(name, [])
        if not history or history[-1][1] != state:
            history.append((time, state))

    def state_at(self, name: str, time: float) -> bool:
        """Signal state at an instant (last transition at or before it)."""
        history = self.transitions.get(name)
        if not history:
            raise SimulationError(f"no trace for signal {name!r}")
        state = history[0][1]
        for when, value in history:
            if when > time:
                break
            state = value
        return state

    def downtime(self, name: str) -> float:
        """Total down time of a signal over the scenario horizon."""
        history = self.transitions.get(name)
        if not history:
            raise SimulationError(f"no trace for signal {name!r}")
        total = 0.0
        for (t0, state), (t1, _) in zip(history, history[1:]):
            if not state:
                total += t1 - t0
        last_time, last_state = history[-1]
        if not last_state:
            total += self.horizon - last_time
        return total


class ScenarioRunner:
    """Drives a frozen simulator through an explicit injection schedule."""

    def __init__(self, simulator: AvailabilitySimulator, signals: Sequence[str]):
        self._simulator = simulator
        self._signal_names = tuple(signals)
        for component in simulator.components.values():
            component.failure_rate = 0.0  # freeze stochastic failures

    @classmethod
    def for_controller(
        cls,
        spec: ControllerSpec,
        topology: DeploymentTopology,
        scenario: RestartScenario = RestartScenario.REQUIRED,
        hardware: HardwareParams = PAPER_HARDWARE,
        software: SoftwareParams = PAPER_SOFTWARE,
    ) -> "ScenarioRunner":
        """A frozen controller simulation with the cp/sdp/ldp/dp signals."""
        simulator = build_simulator(
            spec,
            topology,
            hardware,
            software,
            scenario,
            SimulationConfig(seed=0),
        )
        return cls(simulator, ("cp", "sdp", "ldp", "dp"))

    @property
    def simulator(self) -> AvailabilitySimulator:
        return self._simulator

    def run(self, injections: Sequence[Injection], horizon: float) -> ScenarioTrace:
        """Apply the injections in time order and record signal transitions.

        Repairs behave like completed restarts (supervisor hooks apply);
        components failed by injection stay down until explicitly repaired.
        An injection target may name a group
        (:meth:`~repro.sim.engine.AvailabilitySimulator.resolve_group`
        grammar — e.g. ``"rack:R1/*"``, ``"role:Database"``); the whole
        group then transitions at one instant.
        """
        if horizon <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon}")
        ordered = sorted(injections, key=lambda i: i.time)
        if ordered and ordered[-1].time > horizon:
            raise SimulationError("injection scheduled beyond the horizon")
        trace = ScenarioTrace(horizon=horizon)
        self._snapshot(trace, 0.0)
        for injection in ordered:
            self._simulator.advance_time(injection.time)
            keys = self._simulator.resolve_group(injection.component)
            if injection.kind == "fail":
                self._simulator.fail_group(keys)
            else:
                self._simulator.repair_group(keys)
            self._snapshot(trace, injection.time)
        self._simulator.advance_time(horizon)
        self._snapshot(trace, horizon)
        return trace

    def _snapshot(self, trace: ScenarioTrace, time: float) -> None:
        for name in self._signal_names:
            trace.record(time, name, self._signal_state(name))

    def _signal_state(self, name: str) -> bool:
        return self._simulator.signal(name).state
