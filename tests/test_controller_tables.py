"""Tests for the table renderers (repro.controller.tables)."""

from repro.controller.tables import render_table1, render_table2, render_table3


class TestRenderers:
    def test_table1_contains_all_processes(self, spec):
        text = render_table1(spec)
        for name in (
            "config-api",
            "discovery",
            "control",
            "redis",
            "zookeeper",
            "vrouter-agent",
        ):
            assert name in text
        assert "TABLE I" in text

    def test_table1_shows_quorums(self, spec):
        text = render_table1(spec)
        assert "2 of 3" in text
        assert "1 of 1" in text

    def test_table2_counts(self, spec):
        text = render_table2(spec)
        assert "Auto" in text and "Manual" in text
        lines = text.splitlines()
        auto_line = next(line for line in lines if line.startswith("Auto"))
        assert auto_line.split() == ["Auto", "6", "3", "4", "0"]
        manual_line = next(
            line for line in lines if line.startswith("Manual")
        )
        assert manual_line.split() == ["Manual", "0", "0", "1", "4"]

    def test_table3_sums_row(self, spec):
        text = render_table3(spec)
        sums_line = next(
            line for line in text.splitlines() if line.startswith("Sums")
        )
        assert sums_line.split() == ["Sums", "4", "12", "0", "2"]

    def test_renderers_work_for_other_controllers(self, flat_spec):
        assert "consensus-store" in render_table1(flat_spec)
        assert "Controller" in render_table2(flat_spec)
        assert "Sums" in render_table3(flat_spec)
