"""The paper's reference deployment topologies (section IV, Fig. 2).

* **Small** — all critical roles of each node combined in one VM (GCAD1-3),
  three VMs on three hosts, all hosts in a single rack.
* **Medium** — roles in separate VMs (G1-3, C1-3, A1-3, D1-3), node ``i``'s
  VMs on host ``Hi``; hosts H1-H2 in rack R1, H3 in rack R2.
* **Large** — every role copy in its own VM on its own host; node ``i``'s
  hosts in their own rack ``Ri``.

Builders are parameterized by the controller's cluster roles so the same
layouts apply to any :class:`~repro.controller.spec.ControllerSpec`, and by
the cluster size for 2N+1 generalizations (Medium keeps a quorum majority of
nodes in rack R1, matching the paper's two-rack hazard).
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.spec import ControllerSpec
from repro.errors import TopologyError
from repro.topology.deployment import DeploymentTopology
from repro.topology.elements import Host, Rack, RoleInstance, Vm


def _role_names(spec_or_roles: ControllerSpec | Sequence[str]) -> tuple[str, ...]:
    if isinstance(spec_or_roles, ControllerSpec):
        return tuple(role.name for role in spec_or_roles.cluster_roles)
    names = tuple(spec_or_roles)
    if not names or len(set(names)) != len(names):
        raise TopologyError("role names must be non-empty and distinct")
    return names


def _cluster_size(
    spec_or_roles: ControllerSpec | Sequence[str], cluster_size: int | None
) -> int:
    if cluster_size is None:
        if isinstance(spec_or_roles, ControllerSpec):
            return spec_or_roles.cluster_size
        return 3
    if cluster_size < 1:
        raise TopologyError(f"cluster_size must be >= 1, got {cluster_size}")
    return cluster_size


def small_topology(
    spec_or_roles: ControllerSpec | Sequence[str],
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """The Small topology: combined role VMs, one host each, one rack."""
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    rack = Rack("R1")
    hosts = tuple(Host(f"H{i}", "R1") for i in range(1, n + 1))
    vms = tuple(Vm(f"GCAD{i}", f"H{i}") for i in range(1, n + 1))
    instances = tuple(
        RoleInstance(role, i, f"GCAD{i}")
        for i in range(1, n + 1)
        for role in roles
    )
    return DeploymentTopology("Small", (rack,), hosts, vms, instances)


def medium_topology(
    spec_or_roles: ControllerSpec | Sequence[str],
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """The Medium topology: per-role VMs, node VMs per host, two racks.

    A quorum majority of nodes (all but the last) resides in rack R1 —
    reproducing the paper's observation that the two-rack layout keeps the
    "2 of 3" quorum exposed to a single rack failure.
    """
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    if n < 2:
        raise TopologyError("the Medium topology needs at least 2 nodes")
    racks = (Rack("R1"), Rack("R2"))
    hosts = tuple(
        Host(f"H{i}", "R1" if i < n else "R2") for i in range(1, n + 1)
    )
    vms = tuple(
        Vm(f"{role}{i}", f"H{i}") for i in range(1, n + 1) for role in roles
    )
    instances = tuple(
        RoleInstance(role, i, f"{role}{i}")
        for i in range(1, n + 1)
        for role in roles
    )
    return DeploymentTopology("Medium", racks, hosts, vms, instances)


def large_topology(
    spec_or_roles: ControllerSpec | Sequence[str],
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """The Large topology: every role copy on its own host, node per rack."""
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    racks = tuple(Rack(f"R{i}") for i in range(1, n + 1))
    hosts = []
    vms = []
    instances = []
    host_number = 0
    for i in range(1, n + 1):
        for role in roles:
            host_number += 1
            host = Host(f"H{host_number}", f"R{i}")
            hosts.append(host)
            vm = Vm(f"{role}{i}", host.name)
            vms.append(vm)
            instances.append(RoleInstance(role, i, vm.name))
    return DeploymentTopology(
        "Large", racks, tuple(hosts), tuple(vms), tuple(instances)
    )


REFERENCE_BUILDERS = {
    "small": small_topology,
    "medium": medium_topology,
    "large": large_topology,
}


def reference_topology(
    name: str,
    spec_or_roles: ControllerSpec | Sequence[str],
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """Build a reference topology by name (``small``/``medium``/``large``)."""
    try:
        builder = REFERENCE_BUILDERS[name.lower()]
    except KeyError:
        raise TopologyError(
            f"unknown reference topology {name!r}; expected one of "
            f"{sorted(REFERENCE_BUILDERS)}"
        ) from None
    return builder(spec_or_roles, cluster_size)
