"""Parallel and vectorized evaluation engine.

Three throughput layers over the analytic and simulation stacks, built for
the 10^4-10^6 model evaluations that availability confidence studies need:

* :mod:`repro.perf.vectorized` — whole-grid closed-form evaluation through
  the numpy k-of-n kernels (``fig*_series_vectorized``, ``hw_*_array``,
  ``plane_availability_array``);
* :mod:`repro.perf.parallel` — the chunked, ``SeedSequence.spawn``-seeded
  Monte-Carlo runner (:func:`monte_carlo_parallel`), bit-identical across
  worker counts, plus the warm process-pool registry
  (:func:`get_warm_pool`) that replication dispatch reuses across calls;
  the matching replication runner lives in :mod:`repro.sim.replicate`;
* :mod:`repro.perf.cache` — transparent memoization of model evaluations
  keyed on the frozen parameter dataclasses;
* :mod:`repro.perf.batching` — memory-bounded chunk sizing for the
  struct-of-arrays lockstep replication kernel (:mod:`repro.sim.batched`).
"""

from repro.perf.batching import (
    BYTES_PER_ROW_COMPONENT,
    DEFAULT_BUDGET_BYTES,
    replication_batch_size,
)
from repro.perf.cache import (
    clear_engine_cache,
    engine_cache_info,
    evaluate_topology_cached,
    memoize_model,
)
from repro.perf.parallel import (
    ARRAY_MODELS,
    DEFAULT_CHUNK_SIZE,
    MAX_WARM_POOLS,
    PoolHandle,
    acquire_warm_pool,
    chunk_bounds,
    get_warm_pool,
    monte_carlo_parallel,
    shutdown_warm_pools,
    split_chunks,
    warm_pool_count,
    warm_pool_lease_count,
)
from repro.perf.vectorized import (
    dp_availability_array,
    fig3_series_vectorized,
    fig4_series_vectorized,
    fig5_series_vectorized,
    hw_availability_array,
    hw_large_array,
    hw_medium_array,
    hw_small_array,
    local_dp_availability_array,
    plane_availability_array,
    sweep_vectorized,
)

__all__ = [
    "BYTES_PER_ROW_COMPONENT",
    "DEFAULT_BUDGET_BYTES",
    "replication_batch_size",
    "ARRAY_MODELS",
    "DEFAULT_CHUNK_SIZE",
    "MAX_WARM_POOLS",
    "PoolHandle",
    "acquire_warm_pool",
    "chunk_bounds",
    "get_warm_pool",
    "monte_carlo_parallel",
    "shutdown_warm_pools",
    "split_chunks",
    "warm_pool_count",
    "warm_pool_lease_count",
    "memoize_model",
    "evaluate_topology_cached",
    "engine_cache_info",
    "clear_engine_cache",
    "dp_availability_array",
    "fig3_series_vectorized",
    "fig4_series_vectorized",
    "fig5_series_vectorized",
    "hw_availability_array",
    "hw_small_array",
    "hw_medium_array",
    "hw_large_array",
    "local_dp_availability_array",
    "plane_availability_array",
    "sweep_vectorized",
]
