"""Monte-Carlo campaigns over a control-network graph.

The analytic side (:mod:`repro.network.paths`) computes each switch's exact
steady-state control-path availability from per-element availabilities
under independence.  This module runs the same graph through the
discrete-event simulator — every node, link, and shared-risk group becomes
a :class:`~repro.sim.entities.Component`, links depend on their endpoints
and SRG, and one binary signal per switch (``cp:<switch>``) integrates the
"reaches an up controller site" predicate over simulated time.

With no hazards attached the simulated per-switch availabilities must
match the analytic exact values within confidence intervals (the
degenerate-campaign invariant, asserted by the cross-validation suite);
link-flap and SRG hazards (:mod:`repro.faults.hazards`) then break
independence in controlled ways the analytic side cannot express.

Determinism follows the :func:`repro.faults.campaign.run_campaign`
discipline exactly: replication seeds derive from the root seed, results
merge in index order, and the outcome is bit-identical for any worker
count and with telemetry on or off.
"""

from __future__ import annotations

import json
from concurrent.futures import Executor
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.errors import NetworkError
from repro.obs import runtime as obs
from repro.obs import telemetry
from repro.obs.manifest import params_hash
from repro.faults.hazards import (
    HazardSpec,
    attach_hazards,
    hazard_from_dict,
    hazard_to_dict,
)
from repro.network.graph import NetworkGraph, NetworkLink
from repro.network.paths import exact_control_path_unavailability
from repro.perf.parallel import broadcast_value, map_chunked
from repro.sim.engine import AvailabilitySimulator
from repro.sim.entities import Component, ComponentKind
from repro.sim.measures import ConfidenceInterval, batch_means_interval
from repro.sim.replicate import map_jobs
from repro.sim.rng import derive_seeds
from repro.units import mttr_from_availability

__all__ = [
    "NetworkCampaignSpec",
    "NetworkRunResult",
    "NetworkCampaignResult",
    "build_network_simulator",
    "run_network_campaign",
    "analytic_per_switch",
]

_NODE_KIND_MAP = {
    "switch": ComponentKind.SWITCH,
    "router": ComponentKind.ROUTER,
    "site": ComponentKind.SITE,
}


@dataclass(frozen=True)
class NetworkCampaignSpec:
    """A frozen, JSON-serializable network simulation campaign.

    Per-element failure rates come from each element's steady-state
    availability plus a per-class MTBF (hours): ``failure_rate = 1/MTBF``
    and ``MTTR = MTBF * (1 - A) / A``, so the long-run availability of the
    simulated on/off process equals the graph's declared availability.
    Elements with availability 1.0 never fail intrinsically.

    Attributes:
        graph: the network graph to simulate.
        sites: controller sites serving the fleet; empty means every
            ``"site"`` node in the graph.
        horizon_hours: simulated time per replication.
        replications: independent replications (seeds derived from
            ``seed``).
        seed: root seed.
        batches: batch-means windows per replication.
        hazards: hazard specs (e.g. link-flap / SRG failures) attached to
            every replication.
        node_mtbf_hours / link_mtbf_hours / srg_mtbf_hours: per-class MTBF
            used to convert availabilities into rates.
    """

    graph: NetworkGraph
    sites: tuple[str, ...] = ()
    horizon_hours: float = 5_000.0
    replications: int = 4
    seed: int = 20190324
    batches: int = 4
    hazards: tuple[HazardSpec, ...] = field(default_factory=tuple)
    node_mtbf_hours: float = 1_000.0
    link_mtbf_hours: float = 500.0
    srg_mtbf_hours: float = 2_000.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "hazards", tuple(self.hazards))
        if self.horizon_hours <= 0:
            raise NetworkError(
                f"horizon_hours must be > 0, got {self.horizon_hours}"
            )
        if self.replications < 1:
            raise NetworkError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.batches < 1:
            raise NetworkError(f"batches must be >= 1, got {self.batches}")
        for name in ("node_mtbf_hours", "link_mtbf_hours", "srg_mtbf_hours"):
            if getattr(self, name) <= 0:
                raise NetworkError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        node_names = {node.name for node in self.graph.nodes}
        for site in self.sites:
            if site not in node_names:
                raise NetworkError(
                    f"campaign site {site!r} is not a node of graph "
                    f"{self.graph.name!r}"
                )
        if not self.resolved_sites:
            raise NetworkError(
                f"graph {self.graph.name!r} has no controller sites"
            )
        if not self.graph.switches:
            raise NetworkError(
                f"graph {self.graph.name!r} has no switches to observe"
            )
        for element in (*self.graph.nodes, *self.graph.links, *self.graph.srgs):
            if element.availability <= 0.0:
                raise NetworkError(
                    f"element {element.name!r} has availability 0; the "
                    "simulated on/off process needs availability > 0"
                )

    @property
    def resolved_sites(self) -> tuple[str, ...]:
        return self.sites if self.sites else self.graph.sites

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "graph":
                record["graph"] = value.to_dict()
            elif spec_field.name == "hazards":
                record["hazards"] = [hazard_to_dict(h) for h in value]
            elif isinstance(value, tuple):
                record[spec_field.name] = list(value)
            else:
                record[spec_field.name] = value
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "NetworkCampaignSpec":
        data = dict(record)
        names = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise NetworkError(
                f"unknown network-campaign field(s) {sorted(unknown)}"
            )
        if "graph" in data:
            data["graph"] = NetworkGraph.from_dict(data["graph"])
        if "hazards" in data:
            data["hazards"] = tuple(
                hazard_from_dict(h) for h in data["hazards"]
            )
        if "sites" in data:
            data["sites"] = tuple(data["sites"])
        try:
            return cls(**data)
        except TypeError as error:
            raise NetworkError(
                f"invalid network-campaign record: {error}"
            ) from None

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "NetworkCampaignSpec":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise NetworkError(
                f"invalid network-campaign JSON: {error}"
            ) from None
        if not isinstance(record, dict):
            raise NetworkError("network-campaign JSON must be an object")
        return cls.from_dict(record)

    def params_hash(self) -> str:
        """Canonical hash of the spec (graph included), for manifests."""
        return params_hash(self.to_dict())


def _rates(availability: float, mtbf_hours: float) -> tuple[float, float]:
    if availability >= 1.0:
        return 0.0, 1.0
    return 1.0 / mtbf_hours, mttr_from_availability(availability, mtbf_hours)


def _path_predicate(
    switch: str,
    site_set: frozenset[str],
    incident: Mapping[str, tuple[NetworkLink, ...]],
):
    """Signal predicate: the switch reaches some up controller site.

    A link's effective up-state already folds in both endpoints and its
    SRG (they are simulator dependencies), so the search only consults
    effective link states plus the switch's own state.
    """

    def predicate(simulator: AvailabilitySimulator) -> bool:
        if not simulator.effectively_up(switch):
            return False
        seen = {switch}
        stack = [switch]
        while stack:
            current = stack.pop()
            if current in site_set:
                return True
            for link in incident[current]:
                if not simulator.effectively_up(link.name):
                    continue
                neighbor = link.other(current)
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return False

    return predicate


def build_network_simulator(
    spec: NetworkCampaignSpec, seed: int
) -> AvailabilitySimulator:
    """One replication's simulator: graph elements as components + signals.

    Component registration order is fixed (SRGs, nodes, links — each in
    graph order) so named RNG streams, and therefore whole trajectories,
    are pure functions of the seed.  Links depend on both endpoints and
    their SRG; a signal ``cp:<switch>`` is registered per switch (graph
    order) plus ``cp:all`` for the whole fleet.
    """
    graph = spec.graph
    components: list[Component] = []
    for srg in graph.srgs:
        failure_rate, repair_mean = _rates(
            srg.availability, spec.srg_mtbf_hours
        )
        components.append(
            Component(
                key=srg.name,
                kind=ComponentKind.SRG,
                failure_rate=failure_rate,
                repair_mean=repair_mean,
            )
        )
    for node in graph.nodes:
        failure_rate, repair_mean = _rates(
            node.availability, spec.node_mtbf_hours
        )
        components.append(
            Component(
                key=node.name,
                kind=_NODE_KIND_MAP[node.kind],
                failure_rate=failure_rate,
                repair_mean=repair_mean,
            )
        )
    for link in graph.links:
        failure_rate, repair_mean = _rates(
            link.availability, spec.link_mtbf_hours
        )
        dependencies = (link.a, link.b) + (
            (link.srg,) if link.srg is not None else ()
        )
        components.append(
            Component(
                key=link.name,
                kind=ComponentKind.LINK,
                failure_rate=failure_rate,
                repair_mean=repair_mean,
                dependencies=dependencies,
            )
        )
    simulator = AvailabilitySimulator(components, seed=seed)
    incident = graph.adjacency()
    site_set = frozenset(spec.resolved_sites)
    switch_predicates = {}
    for switch in graph.switches:
        predicate = _path_predicate(switch, site_set, incident)
        switch_predicates[switch] = predicate
        simulator.add_signal(f"cp:{switch}", predicate)

    def all_switches(simulator: AvailabilitySimulator) -> bool:
        return all(
            predicate(simulator)
            for predicate in switch_predicates.values()
        )

    simulator.add_signal("cp:all", lambda sim: all_switches(sim))
    return simulator


@dataclass(frozen=True)
class NetworkRunResult:
    """One replication's measurements."""

    seed: int
    per_switch: tuple[tuple[str, float], ...]
    all_switches: float
    events: int

    def availability(self, switch: str) -> float:
        for name, value in self.per_switch:
            if name == switch:
                return value
        raise NetworkError(f"no measurement for switch {switch!r}")


@dataclass(frozen=True)
class NetworkCampaignResult:
    """A finished network campaign: merged replications plus statistics."""

    spec: NetworkCampaignSpec
    results: tuple[NetworkRunResult, ...]
    seeds: tuple[int, ...]
    stats: tuple[dict, ...] = field(default_factory=tuple)

    def availability(self, switch: str) -> float:
        """Mean availability of one switch's control path across replications."""
        values = [result.availability(switch) for result in self.results]
        return sum(values) / len(values)

    def per_switch(self) -> dict[str, float]:
        return {
            switch: self.availability(switch)
            for switch in self.spec.graph.switches
        }

    def fleet_availability(self) -> float:
        per_switch = self.per_switch()
        return sum(per_switch.values()) / len(per_switch)

    def all_switches_availability(self) -> float:
        values = [result.all_switches for result in self.results]
        return sum(values) / len(values)

    def interval(self, switch: str) -> ConfidenceInterval:
        """Across-replication confidence interval for one switch."""
        return batch_means_interval(
            [result.availability(switch) for result in self.results]
        )

    def total_injections(self, kind: str | None = None) -> int:
        total = 0
        for stat in self.stats:
            injections = stat.get("injections", {})
            if kind is None:
                total += sum(injections.values())
            else:
                total += injections.get(kind, 0)
        return total

    @property
    def total_events(self) -> int:
        return sum(stat.get("events", 0) for stat in self.stats)


def _collect(
    spec: NetworkCampaignSpec, seed: int, simulator: AvailabilitySimulator
) -> NetworkRunResult:
    return NetworkRunResult(
        seed=seed,
        per_switch=tuple(
            (switch, simulator.availability(f"cp:{switch}"))
            for switch in spec.graph.switches
        ),
        all_switches=simulator.availability("cp:all"),
        events=simulator.events_processed,
    )


def _run_one_replication(
    spec: NetworkCampaignSpec, seed: int
) -> tuple[NetworkRunResult, dict]:
    simulator = build_network_simulator(spec, seed)
    hazard_set = attach_hazards(simulator, spec.hazards)
    simulator.run(spec.horizon_hours, batches=spec.batches)
    stats = hazard_set.stats()
    stats["events"] = simulator.events_processed
    return _collect(spec, seed, simulator), stats


def _network_replication(job: tuple) -> tuple[NetworkRunResult, dict]:
    """One replication (module-level so it pickles into worker processes)."""
    spec, seed = job
    return _run_one_replication(spec, seed)


def _network_replication_from_broadcast(
    seed: int,
) -> tuple[NetworkRunResult, dict]:
    """Warm-pool path: the frozen spec ships once per worker process."""
    return _run_one_replication(broadcast_value(), seed)


def run_network_campaign(
    spec: NetworkCampaignSpec,
    workers: int = 1,
    executor: Executor | None = None,
) -> NetworkCampaignResult:
    """Execute a network campaign; bit-identical for any ``workers`` count."""
    seeds = derive_seeds(spec.seed, spec.replications)
    obs.note_solver("network-campaign")
    obs.annotate("topology", spec.graph.name)
    obs.annotate("seed.network_root", spec.seed)
    obs.annotate("seed.network_replications", spec.replications)
    obs.annotate("seed.network_hash", spec.params_hash())
    telemetry.emit(
        "network.campaign.start",
        graph=spec.graph.name,
        graph_hash=spec.graph.graph_hash(),
        replications=spec.replications,
        hazards=len(spec.hazards),
        workers=workers,
        horizon_hours=spec.horizon_hours,
        spec_hash=spec.params_hash(),
    )
    with obs.span(
        "network.campaign",
        graph=spec.graph.name,
        replications=spec.replications,
        hazards=len(spec.hazards),
        workers=workers,
    ):
        if executor is None and workers > 1 and spec.replications > 1:
            outcomes = map_chunked(
                _network_replication_from_broadcast,
                list(seeds),
                workers,
                spec,
            )
        else:
            outcomes = map_jobs(
                _network_replication,
                [(spec, seed) for seed in seeds],
                workers=workers,
                executor=executor,
                span_name="network.replication",
            )
    results = tuple(result for result, _ in outcomes)
    stats = tuple(stat for _, stat in outcomes)
    if obs.enabled():
        kinds: dict[str, int] = {}
        for stat in stats:
            for kind, count in stat.get("injections", {}).items():
                kinds[kind] = kinds.get(kind, 0) + count
        for kind, count in sorted(kinds.items()):
            obs.count(f"network.injections.{kind}", count)
    campaign = NetworkCampaignResult(
        spec=spec, results=results, seeds=seeds, stats=stats
    )
    if telemetry.enabled():
        telemetry.emit(
            "network.campaign.end",
            graph=spec.graph.name,
            replications=spec.replications,
            fleet_availability=campaign.fleet_availability(),
            injections=campaign.total_injections(),
            events=campaign.total_events,
        )
    return campaign


def analytic_per_switch(spec: NetworkCampaignSpec) -> dict[str, float]:
    """Hazard-free analytic prediction for each switch's signal.

    With independent exponential on/off elements (exactly what
    :func:`build_network_simulator` builds when no hazards are attached),
    the long-run fraction of time the control-path predicate holds equals
    the exact structure-function availability at the graph's steady-state
    element availabilities — the degenerate-campaign invariant.
    """
    return {
        switch: 1.0
        - exact_control_path_unavailability(
            spec.graph, switch, spec.resolved_sites
        )
        for switch in spec.graph.switches
    }
