"""Bridge between the HW-centric and SW-centric views.

Section V treats each role as an atomic element with availability ``A_C``;
section VI decomposes roles into processes.  This module connects the two:

* :func:`implied_role_availability` — the availability of one role
  *instance* implied by the process model (the product of its quorum
  units' per-instance availabilities), i.e. the ``A_C`` the HW-centric
  model *should* use for that role;
* :func:`hw_availability_implied` — the HW-centric evaluation with the
  implied per-role availabilities.

Because the SW model satisfies a role's 1-of-n units *independently*
(config-api on node 1 plus schema on node 2 counts), while the HW model
demands whole functioning instances, the implied-HW value is a **lower
bound** on the SW-centric availability — tight to first order.  The gap
measures exactly how much the atomic-role abstraction gives away, which
the tests quantify at the paper's parameters (< 1% of unavailability).
"""

from __future__ import annotations

from repro.controller.role import RoleSpec
from repro.controller.spec import ControllerSpec, Plane
from repro.models.engine import (
    RoleRequirement,
    UnitRequirement,
    evaluate_topology,
)
from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams
from repro.topology.deployment import DeploymentTopology


def implied_role_availability(
    role: RoleSpec, software: SoftwareParams, plane: Plane = Plane.CP
) -> float:
    """Per-instance role availability implied by the process model.

    The probability that a single node-role instance has every process the
    plane requires: the product over the role's quorum units of their
    per-instance availabilities.  Roles with no required processes yield 1.
    """
    amap = software.availability_map()
    value = 1.0
    for unit in role.quorum_units(plane.value):
        value *= unit.alpha(amap)
    return value


def implied_role_quorum(role: RoleSpec, plane: Plane = Plane.CP) -> int:
    """The instance quorum the HW abstraction assigns to a role.

    The paper's rule: a role needs as many full instances as its most
    demanding process quorum (Database: 2-of-3; the others: 1-of-3).
    Roles with no required processes need 0.
    """
    units = role.quorum_units(plane.value)
    return max((unit.quorum for unit in units), default=0)


def hw_availability_implied(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    plane: Plane = Plane.CP,
) -> float:
    """HW-centric availability with per-role implied availabilities.

    Each role is an atomic element with availability
    :func:`implied_role_availability` and quorum
    :func:`implied_role_quorum`, evaluated on the explicit topology by the
    exact engine.  A lower bound on the SW-centric plane availability.
    """
    requirements = []
    for role in spec.cluster_roles:
        quorum = implied_role_quorum(role, plane)
        if quorum == 0:
            continue
        alpha = implied_role_availability(role, software, plane)
        requirements.append(
            RoleRequirement(
                role.name, (UnitRequirement(role.name, quorum, alpha),)
            )
        )
    availability = {
        "rack": hardware.a_rack,
        "host": hardware.a_host,
        "vm": hardware.a_vm,
    }
    return evaluate_topology(topology, requirements, availability)


def abstraction_gap(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
) -> tuple[float, float]:
    """``(implied_hw_cp, sw_cp)`` — how much the atomic-role view loses.

    ``implied_hw_cp <= sw_cp`` always; the difference is the availability
    credit for cross-instance process mixing that only the process-level
    model grants.
    """
    from repro.models.sw import cp_availability
    from repro.params.software import RestartScenario

    implied = hw_availability_implied(
        spec, topology, hardware, software, Plane.CP
    )
    sw = cp_availability(
        spec,
        topology_name,
        hardware,
        software,
        RestartScenario.NOT_REQUIRED,
    )
    return implied, sw
