"""Composite availability reports.

One call that assembles everything an operator would ask of the framework
for a given controller, topology, and scenario: plane availabilities and
downtime, dominant failure modes, weak-link ranking, and the outage
frequency/duration profile — rendered as text by :func:`render_report`.
Backs the ``repro-avail report`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.spec import ControllerSpec, Plane
from repro.core.cutsets import RankedCutSet
from repro.analysis.frequency import OutageProfile
from repro.models.dataplane import local_dp_availability
from repro.models.failure_modes import dominant_failure_modes
from repro.models.outage import plane_outage_profile
from repro.models.sw import plane_availability_exact
from repro.models.weak_links import WeakLink, rank_weak_links
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.reporting.tables import format_table
from repro.topology.deployment import DeploymentTopology
from repro.units import downtime_minutes_per_year


@dataclass(frozen=True)
class AvailabilityReport:
    """Everything the framework knows about one deployment configuration."""

    controller: str
    topology: str
    scenario: RestartScenario
    cp: float
    shared_dp: float
    local_dp: float
    dp: float
    cp_modes: list[RankedCutSet]
    cp_weak_links: list[WeakLink]
    cp_outages: OutageProfile
    dp_weak_links: list[WeakLink]


def generate_report(
    spec: ControllerSpec,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    top: int = 5,
) -> AvailabilityReport:
    """Evaluate one configuration end to end (exact engine throughout)."""
    cp = plane_availability_exact(
        spec, Plane.CP, topology, hardware, software, scenario
    )
    shared = plane_availability_exact(
        spec, Plane.DP, topology, hardware, software, scenario
    )
    local = local_dp_availability(spec, software, scenario)
    return AvailabilityReport(
        controller=spec.name,
        topology=topology.name,
        scenario=scenario,
        cp=cp,
        shared_dp=shared,
        local_dp=local,
        dp=shared * local,
        cp_modes=dominant_failure_modes(
            spec, topology, hardware, software, scenario, Plane.CP, top=top
        ),
        cp_weak_links=rank_weak_links(
            spec, topology, hardware, software, scenario, Plane.CP, top=top
        ),
        cp_outages=plane_outage_profile(
            spec, topology, hardware, software, scenario, Plane.CP
        ),
        dp_weak_links=rank_weak_links(
            spec, topology, hardware, software, scenario, Plane.DP, top=top
        ),
    )


def render_report(report: AvailabilityReport) -> str:
    """Human-readable text rendering of a report."""
    sections = [
        f"Availability report: {report.controller} on {report.topology} "
        f"(supervisor {report.scenario.name})",
        "",
        format_table(
            ("Plane", "Availability", "Downtime (min/yr)"),
            [
                (
                    label,
                    f"{value:.8f}",
                    f"{downtime_minutes_per_year(value):.2f}",
                )
                for label, value in (
                    ("SDN control plane", report.cp),
                    ("Shared data plane", report.shared_dp),
                    ("Local data plane", report.local_dp),
                    ("Per-host data plane", report.dp),
                )
            ],
        ),
        "",
        format_table(
            ("Rank", "Probability", "Dominant CP failure mode"),
            [
                (i + 1, f"{m.probability:.3e}", " + ".join(sorted(m.components)))
                for i, m in enumerate(report.cp_modes)
            ],
        ),
        "",
        format_table(
            ("CP weak link", "FV share", "Automation benefit (min/yr)"),
            [
                (
                    link.component,
                    f"{link.fussell_vesely:.1%}",
                    f"{link.automation_benefit_minutes:.2f}",
                )
                for link in report.cp_weak_links
            ],
        ),
        "",
        format_table(
            ("DP weak link", "FV share", "Automation benefit (min/yr)"),
            [
                (
                    link.component,
                    f"{link.fussell_vesely:.1%}",
                    f"{link.automation_benefit_minutes:.2f}",
                )
                for link in report.dp_weak_links
            ],
        ),
        "",
        (
            f"CP outage profile: one outage every "
            f"{report.cp_outages.mean_years_between_outages:.0f} years, "
            f"mean duration {report.cp_outages.mean_outage_hours:.2f} h"
        ),
    ]
    return "\n".join(sections)
