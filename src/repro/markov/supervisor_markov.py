"""Exact CTMC model of the supervisor-process interaction (section VI.A).

The paper derives effective process availabilities ``A*`` for the two
supervisor scenarios with back-of-envelope arguments (mixing restart times,
halving the failure interval).  This module models the joint (process,
supervisor) dynamics as a four-state CTMC and solves it exactly, validating
those approximations and quantifying where they break:

Scenario 1 (supervisor not required):
  states (P, S) in {up, down}²; the process fails at rate ``1/F`` whenever
  up, restarts at rate ``1/R`` while the supervisor is up and ``1/R_S``
  while it is down; the supervisor fails at rate ``1/F`` and is restored at
  the next maintenance opportunity (rate ``1/W``).  The process is
  *functionally* up in both (up, up) and (up, down).

Scenario 2 (supervisor required):
  a supervisor failure kills the node-role: (up, up) jumps to (down, down);
  the only exit from a supervisor-down state is the supervisor's manual
  restart (rate ``1/R_S``), which also restores the process.

These are exactly the dynamics of the discrete-event simulator
(:mod:`repro.sim.controller_sim`), so this chain is also the analytic
fixed point the simulation converges to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.markov.ctmc import Ctmc
from repro.params.software import RestartScenario, SoftwareParams

#: State labels: (process_up, supervisor_up).
UP_UP = (True, True)
UP_DOWN = (True, False)
DOWN_UP = (False, True)
DOWN_DOWN = (False, False)


def supervisor_process_chain(
    software: SoftwareParams, scenario: RestartScenario
) -> Ctmc:
    """The joint (process, supervisor) CTMC for one scenario."""
    fail = 1.0 / software.mtbf_hours
    auto = 1.0 / software.auto_restart_hours
    manual = 1.0 / software.manual_restart_hours
    window = 1.0 / software.maintenance_window_hours

    chain = Ctmc()
    if scenario is RestartScenario.NOT_REQUIRED:
        # Supervisor restored at the next maintenance window; the process
        # keeps running unsupervised meanwhile.
        chain.add_transition(UP_UP, DOWN_UP, fail)  # process fails
        chain.add_transition(UP_UP, UP_DOWN, fail)  # supervisor fails
        chain.add_transition(DOWN_UP, UP_UP, auto)  # supervised restart
        chain.add_transition(DOWN_UP, DOWN_DOWN, fail)
        chain.add_transition(UP_DOWN, DOWN_DOWN, fail)
        chain.add_transition(UP_DOWN, UP_UP, window)
        chain.add_transition(DOWN_DOWN, UP_DOWN, manual)  # manual restart
        chain.add_transition(DOWN_DOWN, DOWN_UP, window)
    else:
        # Supervisor failure kills the node-role; its manual restart
        # restores everything.
        chain.add_transition(UP_UP, DOWN_UP, fail)  # process fails
        chain.add_transition(UP_UP, DOWN_DOWN, fail)  # supervisor fails
        chain.add_transition(DOWN_UP, UP_UP, auto)
        chain.add_transition(DOWN_UP, DOWN_DOWN, fail)
        chain.add_transition(DOWN_DOWN, UP_UP, manual)
    return chain


@dataclass(frozen=True)
class SupervisorMarkovResult:
    """Exact steady-state process availability and the paper's A*."""

    scenario: RestartScenario
    exact_availability: float
    paper_approximation: float

    @property
    def approximation_error(self) -> float:
        """Relative error of the paper's A* on the *unavailability*."""
        exact_u = 1.0 - self.exact_availability
        approx_u = 1.0 - self.paper_approximation
        if exact_u == 0.0:
            return 0.0
        return abs(approx_u - exact_u) / exact_u


def effective_availability_markov(
    software: SoftwareParams, scenario: RestartScenario
) -> SupervisorMarkovResult:
    """Solve the joint chain and compare with the section VI.A formula.

    The process is functionally up whenever its own state is up (scenario
    1) or when both are up (scenario 2 — a supervisor-down node-role is
    killed, and indeed the chain has no (up, down) state then).
    """
    chain = supervisor_process_chain(software, scenario)
    exact = chain.probability(lambda state: state[0])
    return SupervisorMarkovResult(
        scenario=scenario,
        exact_availability=exact,
        paper_approximation=software.effective_availability(scenario),
    )
