"""Deployment design search: cost versus resiliency, mechanized.

The paper frames its HW-centric models as a tool for "evaluation of the
cost:resiliency tradeoff before capital investment occurs".  This module
performs that evaluation: enumerate the layout design space (combined vs
separated nodes x racks used), price each layout with a simple capital
model, evaluate CP availability with the exact engine, and return the
Pareto frontier / the cheapest design meeting an availability target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.controller.spec import ControllerSpec, Plane
from repro.errors import ModelError
from repro.models.sw import plane_availability_exact
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.topology.deployment import DeploymentTopology
from repro.topology.generate import combined_nodes_topology, separated_topology
from repro.units import downtime_minutes_per_year, nines


@dataclass(frozen=True)
class CostModel:
    """Relative capital cost of a layout (arbitrary units)."""

    rack_cost: float = 10.0
    host_cost: float = 1.0

    def cost(self, topology: DeploymentTopology) -> float:
        return (
            self.rack_cost * len(topology.racks)
            + self.host_cost * len(topology.hosts)
        )


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated layout."""

    topology: DeploymentTopology
    availability: float
    cost: float

    @property
    def name(self) -> str:
        return self.topology.name

    @property
    def downtime_minutes(self) -> float:
        return downtime_minutes_per_year(self.availability)

    @property
    def nines(self) -> float:
        return nines(self.availability)


def enumerate_designs(
    spec: ControllerSpec,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
    cost_model: CostModel | None = None,
    plane: Plane = Plane.CP,
) -> list[DesignPoint]:
    """Evaluate the combined/separated x racks-used design space."""
    cost_model = cost_model or CostModel()
    n = spec.cluster_size
    candidates: list[DeploymentTopology] = []
    for racks_used in range(1, n + 1):
        candidates.append(combined_nodes_topology(spec, racks_used))
        candidates.append(separated_topology(spec, racks_used))
    points = []
    for topology in candidates:
        availability = plane_availability_exact(
            spec, plane, topology, hardware, software, scenario
        )
        points.append(
            DesignPoint(
                topology=topology,
                availability=availability,
                cost=cost_model.cost(topology),
            )
        )
    points.sort(key=lambda p: (p.cost, -p.availability))
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated designs: no other point is cheaper AND more available.

    Returned in increasing cost order; ties in cost keep only the most
    available point.
    """
    if not points:
        raise ModelError("need at least one design point")
    ordered = sorted(points, key=lambda p: (p.cost, -p.availability))
    frontier: list[DesignPoint] = []
    best = -1.0
    for point in ordered:
        if frontier and point.cost == frontier[-1].cost:
            continue  # same cost, lower or equal availability
        if point.availability > best:
            frontier.append(point)
            best = point.availability
    return frontier


def cheapest_meeting(
    points: Sequence[DesignPoint], target_availability: float
) -> DesignPoint | None:
    """The cheapest design reaching the availability target, if any."""
    feasible = [p for p in points if p.availability >= target_availability]
    if not feasible:
        return None
    return min(feasible, key=lambda p: (p.cost, -p.availability))
