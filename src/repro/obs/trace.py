"""Span-based tracing with monotonic timings and nesting.

A :class:`Tracer` records *spans* — named, timed sections of work — as they
complete.  Spans nest: a span opened while another is active records that
span as its parent, so the collected list reconstructs the call tree of an
instrumented run.  Timings come from ``time.perf_counter`` (monotonic, not
wall-clock), expressed relative to the tracer's creation so a trace is
self-contained.

Two entry styles are provided, mirroring the usual tracing APIs:

* context manager — ``with tracer.span("engine.evaluate", roles=3): ...``
* decorator — ``@tracer.wrap("mc.chunk")`` times every call of a function.

Tracers only *observe*: they never touch random state and attach no
behavior to the traced code, which is what lets the determinism tests
demand bit-identical results with tracing on and off.  Most code should not
hold a tracer directly but go through :mod:`repro.obs.runtime`, whose
module-level helpers collapse to no-ops when no session is active.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One completed, timed section of work.

    Attributes:
        name: dotted span name (``"engine.evaluate_topology"``).
        start: seconds since the tracer's epoch at which the span opened.
        duration: elapsed monotonic seconds.
        depth: nesting depth (0 for top-level spans).
        parent: name of the enclosing span, or ``None`` at top level.
        attrs: small JSON-serializable attributes (grid sizes, counts...).
    """

    name: str
    start: float
    duration: float
    depth: int
    parent: str | None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            start=record["start"],
            duration=record["duration"],
            depth=record["depth"],
            parent=record["parent"],
            attrs=dict(record.get("attrs", {})),
        )


class _ActiveSpan:
    """Context manager for one open span (appends to the tracer on exit)."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._start = self._tracer._clock()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack
        stack.pop()
        parent = stack[-1].name if stack else None
        tracer.spans.append(
            Span(
                name=self.name,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                depth=len(stack),
                parent=parent,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects nested :class:`Span` records under one monotonic clock.

    Spans are appended in *completion* order (children before parents);
    :meth:`roots` recovers the top-level phases in start order.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._stack: list[_ActiveSpan] = []
        self.spans: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span: ``with tracer.span("phase", size=n): ...``."""
        return _ActiveSpan(self, name, attrs)

    def wrap(self, name: str | None = None) -> Callable:
        """Decorator timing every call of the wrapped function as a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    @property
    def depth(self) -> int:
        """Current nesting depth (number of open spans)."""
        return len(self._stack)

    def roots(self) -> list[Span]:
        """Completed top-level spans, in start order."""
        return sorted(
            (s for s in self.spans if s.depth == 0), key=lambda s: s.start
        )

    def total(self, name: str) -> float:
        """Summed duration of all completed spans called ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)
