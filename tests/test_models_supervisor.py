"""Tests for the supervisor scenario analysis (repro.models.supervisor)."""

import pytest

from repro.models.supervisor import (
    analyze_scenario,
    compare_scenarios,
    scenario1_preserves_availability,
    scenario2_inherits_supervisor,
)
from repro.params.software import RestartScenario, SoftwareParams


class TestScenarioAnalysis:
    def test_scenario1_triple(self, software):
        analysis = analyze_scenario(software, RestartScenario.NOT_REQUIRED)
        assert analysis.effective_mtbf_hours == 5000.0
        assert analysis.effective_restart_hours == pytest.approx(0.102, abs=1e-3)
        assert analysis.effective_availability == pytest.approx(
            0.99998, abs=1e-6
        )

    def test_scenario2_triple(self, software):
        analysis = analyze_scenario(software, RestartScenario.REQUIRED)
        assert analysis.effective_mtbf_hours == 2500.0
        assert analysis.effective_restart_hours == pytest.approx(0.55)
        assert analysis.effective_availability == pytest.approx(
            0.9998, abs=3e-5
        )

    def test_compare_covers_both(self, software):
        both = compare_scenarios(software)
        assert set(both) == set(RestartScenario)


class TestPaperPredicates:
    def test_paper_defaults_satisfy_both_claims(self, software):
        assert scenario1_preserves_availability(software)
        assert scenario2_inherits_supervisor(software)

    def test_scenario1_claim_fails_with_long_window(self):
        # A day-long supervisor exposure with a short MTBF breaks the
        # "not measurably impacted" claim — the predicate must detect it.
        fragile = SoftwareParams(
            mtbf_hours=50.0,
            auto_restart_hours=0.1,
            manual_restart_hours=10.0,
            maintenance_window_hours=24.0,
        )
        assert not scenario1_preserves_availability(fragile, tolerance=1e-4)

    def test_scenario2_claim_scale_free(self):
        # The inheritance claim holds across a range of F (same R, R_S).
        for f in (1000.0, 5000.0, 20000.0):
            params = SoftwareParams(mtbf_hours=f)
            assert scenario2_inherits_supervisor(params)
