"""Reliability block diagram (RBD) algebra.

A :class:`Block` is an immutable expression tree describing how component
availabilities combine.  Leaves are :class:`Basic` components (a name plus a
probability of being up); internal nodes are :class:`Series`, :class:`Parallel`,
or :class:`KOfN` combinators.

Evaluation assumes statistically independent components, the standing
assumption of the paper.  Components that appear more than once in the tree
(shared components) are handled exactly by conditioning — see
:meth:`Block.availability`, which factors repeated leaves out via the
Shannon decomposition rather than multiplying their probabilities twice.

The RBD layer is used by the failure-mode analysis (minimal cut sets, §VI-G
"dominant failure mode" claims) and as an independent cross-check of the
closed-form topology models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.kofn import a_m_of_n
from repro.errors import ModelError, ParameterError
from repro.units import check_probability


@dataclass(frozen=True)
class Block:
    """Abstract base of the RBD expression tree."""

    def leaves(self) -> Iterator["Basic"]:
        """Yield every :class:`Basic` leaf, including repeats."""
        raise NotImplementedError

    def names(self) -> set[str]:
        """Set of distinct component names appearing in the tree."""
        return {leaf.name for leaf in self.leaves()}

    def _evaluate(self, up: Mapping[str, float]) -> float:
        """Availability given per-name up-probabilities, assuming no leaf
        name repeats (repeats are handled by :meth:`availability`)."""
        raise NotImplementedError

    def availability(self, overrides: Mapping[str, float] | None = None) -> float:
        """Exact availability of the block.

        Args:
            overrides: optional map from component name to availability,
                overriding the probability stored on the leaf.  Every
                distinct name is assigned a single consistent probability.

        Components whose name appears multiple times in the tree are
        treated as the *same* physical component: the evaluation conditions
        on each repeated component being up or down (Shannon expansion),
        which is exact.
        """
        probabilities = self._probabilities(overrides)
        repeated = sorted(self._repeated_names())
        return self._conditioned(probabilities, repeated)

    def _probabilities(
        self, overrides: Mapping[str, float] | None
    ) -> dict[str, float]:
        probabilities: dict[str, float] = {}
        for leaf in self.leaves():
            p = leaf.probability
            if overrides and leaf.name in overrides:
                p = check_probability(overrides[leaf.name], leaf.name)
            existing = probabilities.get(leaf.name)
            if existing is not None and existing != p:
                raise ModelError(
                    f"component {leaf.name!r} appears with conflicting "
                    f"probabilities {existing} and {p}"
                )
            probabilities[leaf.name] = p
        return probabilities

    def _repeated_names(self) -> set[str]:
        seen: set[str] = set()
        repeated: set[str] = set()
        for leaf in self.leaves():
            if leaf.name in seen:
                repeated.add(leaf.name)
            seen.add(leaf.name)
        return repeated

    def _conditioned(self, probabilities: dict[str, float], repeated: list[str]) -> float:
        if not repeated:
            return self._evaluate(probabilities)
        name, rest = repeated[0], repeated[1:]
        p = probabilities[name]
        up = dict(probabilities)
        up[name] = 1.0
        down = dict(probabilities)
        down[name] = 0.0
        return p * self._conditioned(up, rest) + (1.0 - p) * self._conditioned(
            down, rest
        )

    def structure(self, state: Mapping[str, bool]) -> bool:
        """Evaluate the boolean structure function for a component state map.

        ``state[name]`` is True when the component is up.  Missing names
        default to up.
        """
        up = {name: (1.0 if state.get(name, True) else 0.0) for name in self.names()}
        return self._evaluate(up) > 0.5

    # -- combinator sugar ---------------------------------------------------

    def __and__(self, other: "Block") -> "Series":
        """``a & b`` is the series composition (both required)."""
        return Series((self, other))

    def __or__(self, other: "Block") -> "Parallel":
        """``a | b`` is the parallel composition (either suffices)."""
        return Parallel((self, other))


@dataclass(frozen=True)
class Basic(Block):
    """A leaf component with a name and an up-probability."""

    name: str
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("component name must be non-empty")
        check_probability(self.probability, f"probability of {self.name!r}")

    def leaves(self) -> Iterator["Basic"]:
        yield self

    def _evaluate(self, up: Mapping[str, float]) -> float:
        return up[self.name]


def _as_tuple(children) -> tuple[Block, ...]:
    children = tuple(children)
    if not children:
        raise ModelError("a combinator needs at least one child block")
    for child in children:
        if not isinstance(child, Block):
            raise ModelError(f"child {child!r} is not a Block")
    return children


@dataclass(frozen=True)
class Series(Block):
    """All children must be up (availabilities multiply)."""

    children: tuple[Block, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _as_tuple(self.children))

    def leaves(self) -> Iterator[Basic]:
        for child in self.children:
            yield from child.leaves()

    def _evaluate(self, up: Mapping[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= child._evaluate(up)
        return result


@dataclass(frozen=True)
class Parallel(Block):
    """At least one child must be up (unavailabilities multiply)."""

    children: tuple[Block, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _as_tuple(self.children))

    def leaves(self) -> Iterator[Basic]:
        for child in self.children:
            yield from child.leaves()

    def _evaluate(self, up: Mapping[str, float]) -> float:
        down = 1.0
        for child in self.children:
            down *= 1.0 - child._evaluate(up)
        return 1.0 - down


@dataclass(frozen=True)
class KOfN(Block):
    """At least ``k`` of the children must be up.

    When the children are all leaves with the same probability, this is
    exactly the paper's Eq. (1).  Heterogeneous children are handled by the
    exact dynamic-programming convolution of their up-probabilities.
    """

    k: int
    children: tuple[Block, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _as_tuple(self.children))
        if self.k < 0:
            raise ModelError(f"k must be >= 0, got {self.k}")

    def leaves(self) -> Iterator[Basic]:
        for child in self.children:
            yield from child.leaves()

    def _evaluate(self, up: Mapping[str, float]) -> float:
        if self.k == 0:
            return 1.0
        if self.k > len(self.children):
            return 0.0
        probabilities = [child._evaluate(up) for child in self.children]
        first = probabilities[0]
        if all(p == first for p in probabilities):
            return a_m_of_n(self.k, len(probabilities), first)
        # Exact distribution of the number of up children via convolution.
        counts = [1.0]  # counts[j] = P(j children up so far)
        for p in probabilities:
            nxt = [0.0] * (len(counts) + 1)
            for j, w in enumerate(counts):
                nxt[j] += w * (1.0 - p)
                nxt[j + 1] += w * p
            counts = nxt
        # The tail sum can creep past 1 by a ULP under float accumulation.
        return min(1.0, sum(counts[self.k :]))


def identical_kofn(k: int, n: int, name: str, probability: float) -> KOfN:
    """Build a k-of-n block of ``n`` identical components named ``name-i``."""
    if n <= 0:
        raise ModelError(f"n must be >= 1, got {n}")
    return KOfN(k, tuple(Basic(f"{name}-{i + 1}", probability) for i in range(n)))
