"""Tests for table and CSV rendering (repro.reporting)."""

import pytest

from repro.errors import ReproError
from repro.reporting.csvout import write_csv
from repro.reporting.tables import format_availability, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("A", "Bee"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(("A",), [("x",)], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(("A", "B"), [("only-one",)])

    def test_column_widths_accommodate_data(self):
        text = format_table(("H",), [("wiiiiiide",)])
        header, rule, row = text.splitlines()
        assert len(rule) == len("wiiiiiide")


class TestFormatAvailability:
    def test_default_digits(self):
        assert format_availability(0.99998) == "0.9999800"

    def test_custom_digits(self):
        assert format_availability(0.5, digits=2) == "0.50"


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "series.csv"
        write_csv(path, ("x", "y"), [(1, 2), (3, 4)])
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2"
        assert len(content) == 3

    def test_creates_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.csv"
        write_csv(path, ("x",), [(1,)])
        assert path.exists()

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_csv(tmp_path / "x.csv", ("a", "b"), [(1,)])
