"""Sharded campaign job queue for the availability service.

Monte-Carlo campaigns take seconds to minutes — far too long for a
request/response cycle — so the service runs them asynchronously: a
``POST /v1/jobs`` submission is validated, admitted (or shed with 429 by
:mod:`repro.serve.admission`), assigned a job id, and enqueued; clients
poll ``GET /v1/jobs/<id>`` until the state is ``done`` or ``failed``.

**Sharding** — jobs land on ``shards`` independent FIFO queues keyed by
their canonical spec hash (``int(spec_hash, 16) % shards``), each drained
by one worker task.  Identical resubmissions therefore serialize on the
same shard (natural dedup pressure) while distinct campaigns spread across
shards and run concurrently.

**Determinism** — execution calls the exact library entry points the CLI
uses (:func:`repro.faults.crossval.evaluate_campaign` →
:func:`repro.reporting.faults.crossval_payload`, and
:func:`repro.network.campaign.run_network_campaign`), with the spec's own
seed.  Campaign results are bit-identical across worker counts by
construction, so a job's payload is ``==`` to what a CLI run of the same
spec produces; ``tests/test_serve_jobs.py`` pins that equality.

Workers execute jobs via :func:`asyncio.to_thread`, so the event loop
keeps serving queries while campaigns run; the blocking campaign code may
itself fan out over the warm process pool.

**Tracing** — each job gets a :class:`~repro.obs.trace.TraceContext` that
is a child of the submitting request's span (or a fresh root when none is
in scope), and executes inside a :func:`repro.obs.telemetry.scope`
carrying ``job_id`` / ``trace_id`` / ``span_id`` — contextvars survive the
``asyncio.to_thread`` hop, so every ``progress`` and ``replications.*``
event the campaign emits is stamped with the job that produced it.  That
stamp is what lets ``GET /v1/jobs/<id>/events`` filter the firehose down
to one job's stream.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ReproError, ServeError
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext, current_trace, trace_scope
from repro.serve.admission import AdmissionController
from repro.serve.protocol import ProtocolError

__all__ = ["DEFAULT_SHARDS", "Job", "JobQueue"]

#: Default shard count — enough to overlap a handful of tenants' campaigns
#: without spawning a thread per job.
DEFAULT_SHARDS = 2


@dataclass
class Job:
    """One submitted campaign job and its lifecycle record."""

    id: str
    kind: str  # "campaign" | "network_campaign"
    tenant: str
    spec_hash: str
    shard: int
    spec: Any
    workers: int
    state: str = "queued"  # queued -> running -> done | failed
    trace: TraceContext | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None

    @property
    def queue_wait_seconds(self) -> float | None:
        """Time spent queued before a shard worker picked the job up."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def status(self) -> dict[str, Any]:
        """The JSON status record served to polling clients."""
        record: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "spec_hash": self.spec_hash,
            "shard": self.shard,
            "state": self.state,
        }
        if self.trace is not None:
            record["trace_id"] = self.trace.trace_id
        if self.started_at is not None:
            record["queue_wait_seconds"] = self.queue_wait_seconds
        if self.started_at is not None and self.finished_at is not None:
            record["elapsed_seconds"] = self.finished_at - self.started_at
        if self.state == "done":
            record["result"] = self.result
        elif self.state == "failed":
            record["error"] = self.error
        return record


def _build_campaign_job(payload: Mapping[str, Any]) -> tuple[str, Any, str]:
    from repro.faults.campaign import CampaignSpec

    try:
        spec = CampaignSpec.from_dict(payload)
    except ReproError as error:
        raise ProtocolError(f"invalid campaign spec: {error}") from None
    return "campaign", spec, spec.params_hash()


def _build_network_job(payload: Mapping[str, Any]) -> tuple[str, Any, str]:
    from repro.network.campaign import NetworkCampaignSpec
    from repro.topology.network_reference import reference_network

    record = dict(payload)
    graph = record.get("graph")
    if isinstance(graph, str):
        # Accept a reference-topology name in place of a full graph dict.
        try:
            record["graph"] = reference_network(graph).to_dict()
        except ReproError as error:
            raise ProtocolError(
                f"unknown reference network {graph!r}: {error}"
            ) from None
    try:
        spec = NetworkCampaignSpec.from_dict(record)
    except ReproError as error:
        raise ProtocolError(
            f"invalid network-campaign spec: {error}"
        ) from None
    return "network_campaign", spec, spec.params_hash()


def _run_campaign_job(spec: Any, workers: int) -> dict[str, Any]:
    from repro.faults.crossval import evaluate_campaign
    from repro.reporting.faults import crossval_payload

    crossval = evaluate_campaign(spec, workers=workers)
    return crossval_payload(crossval)


def _run_network_job(spec: Any, workers: int) -> dict[str, Any]:
    from repro.network.campaign import run_network_campaign

    result = run_network_campaign(spec, workers=workers)
    return {
        "spec_hash": spec.params_hash(),
        "per_switch": result.per_switch(),
        "fleet_availability": result.fleet_availability(),
        "all_switches_availability": result.all_switches_availability(),
        "injections": result.total_injections(),
        "seeds": list(result.seeds),
    }


_BUILDERS = {
    "campaign": _build_campaign_job,
    "network_campaign": _build_network_job,
}

_RUNNERS = {
    "campaign": _run_campaign_job,
    "network_campaign": _run_network_job,
}


class JobQueue:
    """Sharded FIFO queues of campaign jobs, drained by worker tasks."""

    def __init__(
        self,
        admission: AdmissionController | None = None,
        shards: int = DEFAULT_SHARDS,
        workers_per_job: int = 1,
        registry: MetricsRegistry | None = None,
    ):
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        self.admission = admission or AdmissionController()
        self.shards = int(shards)
        self.workers_per_job = int(workers_per_job)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._queues: list[asyncio.Queue[Job]] = [
            asyncio.Queue() for _ in range(self.shards)
        ]
        self._workers: list[asyncio.Task] = []
        self._jobs: dict[str, Job] = {}
        self._sequence = 0
        self.completed = 0
        self.failed = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn one drain task per shard (idempotent)."""
        if self._workers:
            return
        for shard in range(self.shards):
            self._workers.append(
                asyncio.create_task(
                    self._drain(shard), name=f"serve-jobs-shard-{shard}"
                )
            )

    async def stop(self) -> None:
        """Cancel shard workers; running jobs finish their thread first."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()

    async def join(self) -> None:
        """Block until every queued job has been executed (tests, drain)."""
        for queue in self._queues:
            await queue.join()

    # -- submission and polling -----------------------------------------------

    def submit(self, kind: str, payload: Mapping[str, Any], tenant: str) -> Job:
        """Validate, admit, and enqueue one job; returns its record.

        Raises :class:`ProtocolError` (400) for malformed specs and
        :class:`~repro.serve.admission.AdmissionError` (429) when shed.
        """
        builder = _BUILDERS.get(kind)
        if builder is None:
            raise ProtocolError(
                f"unknown job kind {kind!r} "
                f"(expected one of {sorted(_BUILDERS)})"
            )
        if not isinstance(payload, Mapping):
            raise ProtocolError("job spec must be a JSON object")
        kind, spec, spec_hash = builder(payload)
        self.admission.admit(tenant)
        self._sequence += 1
        shard = int(spec_hash, 16) % self.shards
        parent = current_trace()
        job = Job(
            id=f"job-{self._sequence:06d}-{spec_hash[:8]}",
            kind=kind,
            tenant=tenant,
            spec_hash=spec_hash,
            shard=shard,
            spec=spec,
            workers=self.workers_per_job,
            trace=parent.child() if parent is not None else TraceContext.new(),
        )
        self._jobs[job.id] = job
        self._queues[shard].put_nowait(job)
        telemetry.emit(
            "serve.job.start",
            job_id=job.id,
            job_kind=job.kind,
            tenant=job.tenant,
            spec_hash=job.spec_hash,
            shard=job.shard,
            trace_id=job.trace.trace_id,
        )
        return job

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}", status=404)
        return job

    def queue_depths(self) -> list[int]:
        return [queue.qsize() for queue in self._queues]

    def counters(self) -> dict[str, int]:
        """Current counter values, keyed for the metrics registry."""
        return {
            "serve.jobs.submitted": self._sequence,
            "serve.jobs.completed": self.completed,
            "serve.jobs.failed": self.failed,
        }

    # -- execution ------------------------------------------------------------

    async def _drain(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            job = await queue.get()
            try:
                await self._execute(job)
            finally:
                queue.task_done()

    async def _execute(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.monotonic()
        self.registry.histogram("serve.jobs.queue_wait_seconds").observe(
            job.queue_wait_seconds or 0.0
        )
        runner = _RUNNERS[job.kind]
        trace = job.trace
        stamp: dict[str, Any] = {"job_id": job.id}
        if trace is not None:
            stamp["trace_id"] = trace.trace_id
            stamp["span_id"] = trace.span_id
        try:
            # The scope (and trace) ride the contextvars snapshot into the
            # worker thread: every event the campaign emits is stamped
            # with this job's identity and trace.
            with telemetry.scope(**stamp):
                with trace_scope(trace):
                    telemetry.emit(
                        "serve.job.running",
                        job_kind=job.kind,
                        tenant=job.tenant,
                        shard=job.shard,
                        queue_wait_seconds=job.queue_wait_seconds,
                    )
                    job.result = await asyncio.to_thread(
                        runner, job.spec, job.workers
                    )
        except asyncio.CancelledError:
            job.state = "failed"
            job.error = "server shut down before the job finished"
            raise
        except Exception as error:
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
            self.failed += 1
        else:
            job.state = "done"
            self.completed += 1
        finally:
            job.finished_at = time.monotonic()
            self.admission.release(job.tenant)
            end_fields: dict[str, Any] = {
                "job_id": job.id,
                "job_kind": job.kind,
                "tenant": job.tenant,
                "state": job.state,
                "elapsed_seconds": job.finished_at - job.started_at,
            }
            if trace is not None:
                end_fields["trace_id"] = trace.trace_id
            telemetry.emit("serve.job.end", **end_fields)
