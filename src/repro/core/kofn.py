"""k-of-n block availability — Eq. (1) of the paper.

The paper's fundamental primitive is the availability of an ``m``-of-``n``
block of identical, independent elements each with availability ``alpha``::

    A_{m/n}(alpha) = sum_{i=0}^{n-m} C(n, i) alpha^{n-i} (1-alpha)^i ,  m <= n
    A_{m/n}(alpha) = 0                                               ,  m > n

Conventions carried through the paper and preserved here:

* ``m = 0`` — the block is never required, so its availability is 1 (the
  paper's "0 of 3" processes such as *supervisor* and *nodemgr*).
* ``m > n`` — the requirement cannot be met (e.g. a "2 of 3" quorum with a
  single surviving host), so availability is 0.

Two implementations are provided: a scalar one in exact float arithmetic via
the complementary (unavailability) sum, which is numerically stable for the
high-availability regime ``alpha -> 1`` where the direct sum loses precision,
and a vectorized one over numpy arrays for the sweep harnesses.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.errors import ParameterError
from repro.units import check_probability


def a_m_of_n(m: int, n: int, alpha: float) -> float:
    """Availability of an ``m``-of-``n`` block of elements with availability ``alpha``.

    Implements Eq. (1).  Computed as ``1 - sum_{i=n-m+1}^{n} C(n,i) (1-a)^i a^(n-i)``
    (the probability of *more* than ``n - m`` failures) which keeps full float
    precision when ``alpha`` is close to 1, the regime of every result in the
    paper.

    Args:
        m: Minimum number of elements that must be up.  ``m <= 0`` yields 1.
        n: Number of elements in the block.  Must be >= 0.
        alpha: Per-element availability in ``[0, 1]``.

    Raises:
        ParameterError: if ``n < 0`` or ``alpha`` is outside ``[0, 1]``.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    check_probability(alpha, "alpha")
    if m <= 0:
        return 1.0
    if m > n:
        return 0.0
    q = 1.0 - alpha
    # P(number of failures >= n - m + 1)
    unavailability = 0.0
    for i in range(n - m + 1, n + 1):
        unavailability += math.comb(n, i) * q**i * alpha ** (n - i)
    return max(0.0, 1.0 - unavailability)


def kofn_unavailability(m: int, n: int, alpha: float) -> float:
    """Unavailability ``1 - A_{m/n}(alpha)``, computed without cancellation.

    For the deep-high-availability regime the unavailability itself (order
    ``(1-alpha)**(n-m+1)``) is the quantity of interest; computing it directly
    avoids the ``1 - (1 - tiny)`` round trip.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    check_probability(alpha, "alpha")
    if m <= 0:
        return 0.0
    if m > n:
        return 1.0
    q = 1.0 - alpha
    total = 0.0
    for i in range(n - m + 1, n + 1):
        total += math.comb(n, i) * q**i * alpha ** (n - i)
    return min(1.0, total)


def a_m_of_n_array(m: int, n: int, alpha: np.ndarray | float) -> np.ndarray:
    """Vectorized :func:`a_m_of_n` over an array of per-element availabilities.

    Used by the figure sweep harnesses, where ``alpha`` is a grid of a few
    hundred points.  Returns a float array with the same shape as ``alpha``.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    a = np.asarray(alpha, dtype=float)
    if np.any((a < 0.0) | (a > 1.0)) or np.any(np.isnan(a)):
        raise ParameterError("alpha values must be in [0, 1]")
    if m <= 0:
        return np.ones_like(a)
    if m > n:
        return np.zeros_like(a)
    q = 1.0 - a
    unavailability = np.zeros_like(a)
    for i in range(n - m + 1, n + 1):
        unavailability += math.comb(n, i) * q**i * a ** (n - i)
    return np.clip(1.0 - unavailability, 0.0, 1.0)


def a_m_of_n_exact(m: int, n: int, alpha: Fraction) -> Fraction:
    """Eq. (1) in exact rational arithmetic.

    Used by tests as an oracle against the float implementations: evaluating
    with :class:`fractions.Fraction` inputs removes all rounding error, so
    the float routines can be checked to a few ULPs.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not 0 <= alpha <= 1:
        raise ParameterError(f"alpha must be in [0, 1], got {alpha}")
    if m <= 0:
        return Fraction(1)
    if m > n:
        return Fraction(0)
    total = Fraction(0)
    for i in range(0, n - m + 1):
        total += math.comb(n, i) * alpha ** (n - i) * (1 - alpha) ** i
    return total


def binomial_pmf_array(k: int, n: int, p: np.ndarray | float) -> np.ndarray:
    """Vectorized :func:`binomial_pmf` over an array of success probabilities.

    ``k`` and ``n`` stay scalar — the sweep and Monte-Carlo harnesses
    condition on fixed counts while the probability varies across the grid.
    Returns a float array with the same shape as ``p``.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    q = np.asarray(p, dtype=float)
    if not 0 <= k <= n:
        return np.zeros_like(q)
    if np.any((q < 0.0) | (q > 1.0)) or np.any(np.isnan(q)):
        raise ParameterError("p values must be in [0, 1]")
    return math.comb(n, k) * q**k * (1.0 - q) ** (n - k)


def binomial_pmf(k: int, n: int, p: float) -> float:
    """Probability of exactly ``k`` successes in ``n`` Bernoulli(p) trials.

    The weights ``P(g, c, a, d | x)`` of the paper's Eq. (14) are products of
    these terms; see :func:`repro.core.states.enumerate_up_down`.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not 0 <= k <= n:
        return 0.0
    check_probability(p, "p")
    return math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
