"""Unit tests for the streaming telemetry pipeline (:mod:`repro.obs.telemetry`).

Covers the sink zoo (JSONL with rotation, in-process aggregation,
Prometheus/OpenMetrics snapshots), the bus lifecycle, progress tracking,
the ``obs tail`` read/render path, and the worker-snapshot merge rules of
:meth:`repro.obs.metrics.MetricsRegistry.merge_snapshot` the parallel
dispatcher relies on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import telemetry
from repro.obs.metrics import (
    HISTOGRAM_BUCKET_BOUNDS,
    MetricsRegistry,
    TimingHistogram,
)
from repro.obs.telemetry import (
    AggregatorSink,
    JsonlSink,
    NullSink,
    PrometheusSink,
    ProgressTracker,
    TelemetryBus,
    read_events,
    render_event,
    render_openmetrics,
)


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    telemetry.stop()
    yield
    telemetry.stop()


class TestJsonlSink:
    def test_appends_compact_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"kind": "a", "seq": 0, "x": 1})
        sink.emit({"kind": "b", "seq": 1})
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"kind": "a", "seq": 0, "x": 1}
        assert sink.events_written == 2
        assert sink.rotations == 0

    def test_append_to_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        JsonlSink(path).emit({"seq": 0})
        sink = JsonlSink(path)
        sink.emit({"seq": 1})
        sink.close()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2

    def test_size_based_rotation_shifts_backups(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=64, max_backups=2)
        for seq in range(30):
            sink.emit({"kind": "heartbeat", "seq": seq})
        sink.close()
        assert sink.rotations > 0
        assert path.with_name("events.jsonl.1").exists()
        assert path.with_name("events.jsonl.2").exists()
        # Backups are capped: nothing past .2 may exist.
        assert not path.with_name("events.jsonl.3").exists()
        # The live file stays within the size budget.
        assert path.stat().st_size <= 64
        # Every surviving line is still valid JSON.
        for name in ("events.jsonl", "events.jsonl.1", "events.jsonl.2"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_rejects_non_positive_max_bytes(self, tmp_path):
        with pytest.raises(ObservabilityError):
            JsonlSink(tmp_path / "x.jsonl", max_bytes=0)

    def test_events_visible_before_close(self, tmp_path):
        """Live followers must see events while the stream is open."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        try:
            sink.emit({"kind": "a", "seq": 0})
            lines = path.read_text(encoding="utf-8").splitlines()
            assert [json.loads(line) for line in lines] == [
                {"kind": "a", "seq": 0}
            ]
        finally:
            sink.close()

    def test_flush_every_batches_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=3)
        try:
            sink.emit({"seq": 0})
            sink.emit({"seq": 1})
            assert path.read_text(encoding="utf-8") == ""
            sink.emit({"seq": 2})  # third event flushes the batch
            assert len(path.read_text(encoding="utf-8").splitlines()) == 3
        finally:
            sink.close()
        with pytest.raises(ObservabilityError):
            JsonlSink(tmp_path / "y.jsonl", flush_every=0)

    def test_oversized_event_written_and_rotated_once(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=32, max_backups=3)
        big = {"kind": "huge", "seq": 0, "payload": "x" * 100}
        sink.emit(big)
        # The event was written (never dropped) and exactly one rotation
        # retired it to a backup, leaving the live file within budget.
        assert sink.rotations == 1
        assert sink.events_written == 1
        assert path.stat().st_size == 0
        backup = path.with_name("events.jsonl.1")
        assert json.loads(backup.read_text(encoding="utf-8")) == big
        # Subsequent small events append normally without rotation churn.
        sink.emit({"kind": "a", "seq": 1})
        assert sink.rotations == 1
        sink.close()
        assert json.loads(path.read_text(encoding="utf-8"))["kind"] == "a"

    def test_oversized_event_after_existing_content(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=64, max_backups=3)
        sink.emit({"kind": "a", "seq": 0})
        before = sink.rotations
        sink.emit({"kind": "huge", "seq": 1, "payload": "y" * 200})
        # One rotation total for the oversized emit — not a pre-rotation of
        # the existing content plus a post-rotation of the big event.
        assert sink.rotations == before + 1
        sink.close()
        lines = path.with_name("events.jsonl.1").read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["a", "huge"]

    def test_max_backups_1_replaces_not_accumulates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=16, max_backups=1)
        for seq in range(5):
            sink.emit({"kind": "huge", "seq": seq, "pad": "z" * 40})
        sink.close()
        # Every emit was oversized: each was written then rotated out, and
        # with max_backups=1 the single `.1` backup is replaced in place.
        assert sink.events_written == 5
        assert sink.rotations == 5
        backup = path.with_name("events.jsonl.1")
        assert json.loads(backup.read_text(encoding="utf-8"))["seq"] == 4
        assert not path.with_name("events.jsonl.2").exists()
        assert path.stat().st_size == 0


class TestAggregatorSink:
    def test_counts_and_last_by_kind(self):
        sink = AggregatorSink()
        sink.emit({"kind": "progress", "completed": 1})
        sink.emit({"kind": "progress", "completed": 2})
        sink.emit({"kind": "metrics"})
        assert sink.total == 3
        assert sink.counts == {"progress": 2, "metrics": 1}
        assert sink.last["progress"]["completed"] == 2


class TestOpenMetrics:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("sim.events").increment(42)
        registry.gauge("perf.workers").set(4)
        histogram = registry.histogram("perf.chunk_seconds")
        histogram.observe(0.002)
        histogram.observe(0.3)
        histogram.observe(120.0)  # overflow bucket
        return registry.snapshot()

    def test_exposition_shape(self):
        text = render_openmetrics(self._snapshot())
        assert "# TYPE sim_events_total counter" in text
        assert "sim_events_total 42.0" in text
        assert "# TYPE perf_workers gauge" in text
        assert "perf_workers 4.0" in text
        assert "# TYPE perf_chunk_seconds_seconds histogram" in text
        assert 'perf_chunk_seconds_seconds_bucket{le="+Inf"} 3' in text
        assert "perf_chunk_seconds_seconds_count 3" in text
        assert text.endswith("# EOF\n")

    def test_buckets_are_cumulative(self):
        text = render_openmetrics(self._snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('perf_chunk_seconds_seconds_bucket{le="')
        ]
        assert len(counts) == len(HISTOGRAM_BUCKET_BOUNDS) + 1
        assert counts == sorted(counts)
        # 120 s observation lives only in +Inf: last finite bound < total.
        assert counts[-2] == 2 and counts[-1] == 3

    def test_none_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("unset")
        text = render_openmetrics(registry.snapshot())
        assert "unset" not in text

    def test_prometheus_sink_reacts_only_to_metrics_events(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusSink(path)
        sink.emit({"kind": "progress", "completed": 1})
        assert sink.writes == 0 and not path.exists()
        sink.emit({"kind": "metrics", "snapshot": self._snapshot()})
        assert sink.writes == 1
        assert "sim_events_total 42.0" in path.read_text(encoding="utf-8")


class TestBusLifecycle:
    def test_events_carry_schema_and_sequence(self):
        sink = AggregatorSink()
        bus = TelemetryBus([sink])
        first = bus.emit("a", x=1)
        second = bus.emit("b")
        assert first["schema"] == telemetry.TELEMETRY_SCHEMA_VERSION
        assert (first["seq"], second["seq"]) == (0, 1)
        assert (first["run"], second["run"]) == (0, 0)
        assert first["kind"] == "a" and first["x"] == 1
        assert "t" in first

    def test_two_append_cycles_get_distinct_runs(self, tmp_path):
        """Two start/stop cycles into one file: run ids 0 then 1, and
        ``read_events`` orders the combined stream by ``(run, seq)`` even
        though each cycle restarts ``seq`` at 0."""
        path = tmp_path / "stream.jsonl"
        for cycle in range(2):
            telemetry.start([JsonlSink(path)])
            telemetry.emit("cycle.start", cycle=cycle)
            telemetry.emit("cycle.end", cycle=cycle)
            telemetry.stop()
        events = list(read_events(path))
        assert [e["run"] for e in events] == [0, 0, 1, 1]
        assert [e["seq"] for e in events] == [0, 1, 0, 1]
        assert [(e["run"], e["seq"]) for e in events] == sorted(
            (e["run"], e["seq"]) for e in events
        )
        assert [e["cycle"] for e in events] == [0, 0, 1, 1]

    def test_run_continues_past_runless_legacy_events(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            json.dumps({"kind": "legacy", "seq": 3}) + "\n", encoding="utf-8"
        )
        sink = JsonlSink(path)
        assert sink.last_run == 0  # legacy events count as run 0
        bus = TelemetryBus([sink])
        assert bus.emit("fresh")["run"] == 1
        bus.close()

    def test_explicit_run_id_wins(self, tmp_path):
        bus = TelemetryBus([AggregatorSink()], run=7)
        assert bus.emit("a")["run"] == 7

    def test_read_events_orders_interleaved_runs(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        rows = [
            {"kind": "b", "run": 1, "seq": 0},
            {"kind": "a", "run": 0, "seq": 1},
            {"kind": "a", "run": 0, "seq": 0},
            {"kind": "c", "run": 1, "seq": 1},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in rows), encoding="utf-8"
        )
        ordered = [(e["run"], e["seq"]) for e in read_events(path)]
        assert ordered == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_module_level_bus(self):
        sink = AggregatorSink()
        assert not telemetry.enabled()
        telemetry.emit("dropped")  # no bus: a no-op, not an error
        telemetry.start([sink])
        assert telemetry.enabled()
        with pytest.raises(ObservabilityError):
            telemetry.start([sink])
        telemetry.emit("kept", value=7)
        assert telemetry.stop() is not None
        assert not telemetry.enabled()
        assert telemetry.stop() is None
        assert sink.counts == {"kept": 1}
        assert sink.last["kept"]["value"] == 7

    def test_null_sink_swallows_everything(self):
        sink = NullSink()
        sink.emit({"kind": "anything"})
        sink.close()


class TestProgressTracker:
    def test_rate_eta_and_event_throughput(self):
        tracker = ProgressTracker(4, unit="chunks")
        fields = tracker.update(completed=1, events=100)
        assert fields["unit"] == "chunks"
        assert (fields["completed"], fields["total"]) == (1, 4)
        assert fields["events"] == 100
        assert fields["events_per_second"] > 0
        assert fields["rate_per_second"] > 0
        assert fields["eta_s"] >= 0
        fields = tracker.update(completed=3, events=300)
        assert fields["completed"] == 4
        assert fields["events"] == 400
        assert fields["eta_s"] == 0


class TestTailReadRender:
    def test_read_events_filters_and_skips_junk(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            json.dumps({"kind": "a", "seq": 0}) + "\n"
            + "not json\n"
            + "[1, 2]\n"
            + "\n"
            + json.dumps({"kind": "b", "seq": 1}) + "\n",
            encoding="utf-8",
        )
        assert [e["kind"] for e in read_events(path)] == ["a", "b"]
        assert [e["seq"] for e in read_events(path, kinds=["b"])] == [1]

    def test_render_event_format(self):
        line = render_event(
            {
                "schema": 1,
                "seq": 7,
                "t": 123.0,
                "kind": "progress",
                "completed": 2,
                "rate_per_second": 30.47711,
                "snapshot": {"counters": {}},
            }
        )
        assert line.startswith("[     7] progress")
        assert "completed=2" in line
        assert "rate_per_second=30.4771" in line  # floats at 6 sig figs
        assert "snapshot=<metrics>" in line
        # Header fields are not repeated in the key=value body.
        assert "schema=1" not in line and "t=123" not in line


class TestRegistryMerge:
    """Parent-side merge of worker snapshots (the `map_chunked` contract)."""

    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.counter("sim.events").increment(10)
        parent.merge_snapshot({"counters": {"sim.events": 5, "new": 2}})
        assert parent.counters["sim.events"].value == 15
        assert parent.counters["new"].value == 2

    def test_gauges_last_writer_wins_in_merge_order(self):
        parent = MetricsRegistry()
        # Chunk-index order: the caller merges chunk 0 then chunk 1, so
        # chunk 1's value must win; None (unset worker gauge) never
        # clobbers a real value.
        parent.merge_snapshot({"gauges": {"rate": 10.0}})
        parent.merge_snapshot({"gauges": {"rate": 20.0}})
        parent.merge_snapshot({"gauges": {"rate": None}})
        assert parent.gauges["rate"].value == 20.0

    def test_histogram_bins_merge_elementwise(self):
        a, b = TimingHistogram("t"), TimingHistogram("t")
        a.observe(0.002)
        a.observe(5000.0)
        b.observe(0.002)
        b.observe(0.3)
        merged = MetricsRegistry()
        merged.merge_snapshot({"histograms": {"t": a.summary()}})
        merged.merge_snapshot({"histograms": {"t": b.summary()}})
        result = merged.histograms["t"]
        assert result.count == 4
        assert result.total == pytest.approx(5000.304)
        assert result.minimum == 0.002
        assert result.maximum == 5000.0
        expected = [x + y for x, y in zip(a.bins, b.bins)]
        assert result.bins == expected
        assert sum(result.bins) == 4

    def test_empty_histogram_summary_is_a_noop_merge(self):
        registry = MetricsRegistry()
        registry.histogram("t").observe(1.0)
        registry.merge_snapshot({"histograms": {"t": {"count": 0}}})
        assert registry.histograms["t"].count == 1

    def test_bin_length_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("t").observe(1.0)
        with pytest.raises(ValueError):
            registry.merge_snapshot(
                {
                    "histograms": {
                        "t": {
                            "count": 1,
                            "total": 1.0,
                            "min": 1.0,
                            "max": 1.0,
                            "bins": [1, 0],
                        }
                    }
                }
            )

    def test_zero_sample_histogram_summary(self):
        histogram = TimingHistogram("empty")
        assert histogram.summary() == {"count": 0}
        assert histogram.mean == 0.0


class TestHistogramQuantile:
    def test_empty_histogram_estimates_zero(self):
        assert TimingHistogram("t").quantile(0.5) == 0.0

    def test_out_of_range_rejected(self):
        histogram = TimingHistogram("t")
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_single_observation_is_exact(self):
        histogram = TimingHistogram("t")
        histogram.observe(0.3)
        # Interpolation inside the (0.25, 0.5] bucket clamps to the
        # exactly-tracked max, so a degenerate histogram never extrapolates.
        assert histogram.quantile(0.5) == 0.3
        assert histogram.quantile(0.0) == 0.3
        assert histogram.quantile(1.0) == 0.3

    def test_estimates_land_in_the_right_bucket(self):
        histogram = TimingHistogram("t")
        for _ in range(50):
            histogram.observe(0.003)
        for _ in range(50):
            histogram.observe(0.7)
        p25 = histogram.quantile(0.25)
        p75 = histogram.quantile(0.75)
        assert 0.0025 <= p25 <= 0.005  # inside the 0.003 bucket
        assert 0.5 <= p75 <= 1.0  # inside the 0.7 bucket

    def test_quantiles_are_monotonic(self):
        histogram = TimingHistogram("t")
        for value in (0.001, 0.004, 0.02, 0.07, 0.3, 1.2, 4.0, 20.0, 70.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)
        assert quantiles[0] >= histogram.minimum
        assert quantiles[-1] <= histogram.maximum

    def test_overflow_bucket_returns_max(self):
        histogram = TimingHistogram("t")
        histogram.observe(120.0)  # beyond the last finite bound
        assert histogram.quantile(0.99) == 120.0


def _append_events(path, events, mode="a"):
    with open(path, mode, encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


class TestFollowEvents:
    def test_yields_existing_then_times_out(self, tmp_path):
        path = tmp_path / "live.jsonl"
        _append_events(
            path,
            [
                {"run": 0, "seq": 0, "kind": "a"},
                {"run": 0, "seq": 1, "kind": "b"},
            ],
        )
        events = list(telemetry.follow_events(path, idle_timeout=0))
        assert [event["kind"] for event in events] == ["a", "b"]

    def test_missing_file_times_out_cleanly(self, tmp_path):
        events = list(
            telemetry.follow_events(tmp_path / "never.jsonl", idle_timeout=0)
        )
        assert events == []

    def test_picks_up_appended_events(self, tmp_path):
        path = tmp_path / "live.jsonl"
        _append_events(path, [{"run": 0, "seq": 0, "kind": "early"}])
        appended = False

        def fake_sleep(seconds):
            nonlocal appended
            if not appended:
                _append_events(path, [{"run": 0, "seq": 1, "kind": "late"}])
                appended = True

        events = list(
            telemetry.follow_events(
                path,
                poll_seconds=0.01,
                idle_timeout=0.02,
                _sleep=fake_sleep,
            )
        )
        assert [event["kind"] for event in events] == ["early", "late"]

    def test_survives_rotation_without_losing_tail(self, tmp_path):
        path = tmp_path / "live.jsonl"
        _append_events(
            path,
            [
                {"run": 0, "seq": 0, "kind": "old-a"},
                {"run": 0, "seq": 1, "kind": "old-b"},
            ],
        )
        rotated = False

        def fake_sleep(seconds):
            nonlocal rotated
            if not rotated:
                # Shift rotation: the live file is renamed away and a fresh
                # file (next run id) appears at the original path.
                path.rename(tmp_path / "live.jsonl.1")
                _append_events(
                    path, [{"run": 1, "seq": 0, "kind": "new-a"}], mode="w"
                )
                rotated = True

        events = list(
            telemetry.follow_events(
                path,
                poll_seconds=0.01,
                idle_timeout=0.02,
                _sleep=fake_sleep,
            )
        )
        assert [event["kind"] for event in events] == [
            "old-a",
            "old-b",
            "new-a",
        ]

    def test_partial_trailing_line_is_buffered(self, tmp_path):
        path = tmp_path / "live.jsonl"
        whole = json.dumps({"run": 0, "seq": 0, "kind": "whole"})
        partial = json.dumps({"run": 0, "seq": 1, "kind": "finished"})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(whole + "\n" + partial[:10])
        completed = False

        def fake_sleep(seconds):
            nonlocal completed
            if not completed:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(partial[10:] + "\n")
                completed = True

        events = list(
            telemetry.follow_events(
                path,
                poll_seconds=0.01,
                idle_timeout=0.02,
                _sleep=fake_sleep,
            )
        )
        assert [event["kind"] for event in events] == ["whole", "finished"]

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "live.jsonl"
        _append_events(
            path,
            [
                {"run": 0, "seq": 0, "kind": "keep"},
                {"run": 0, "seq": 1, "kind": "drop"},
                {"run": 0, "seq": 2, "kind": "keep"},
            ],
        )
        events = list(
            telemetry.follow_events(path, kinds={"keep"}, idle_timeout=0)
        )
        assert len(events) == 2

    def test_nonpositive_poll_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            next(
                telemetry.follow_events(
                    tmp_path / "x.jsonl", poll_seconds=0.0
                )
            )

    def test_junk_lines_are_skipped(self, tmp_path):
        path = tmp_path / "live.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write("[1, 2]\n")
            handle.write(json.dumps({"run": 0, "seq": 0, "kind": "ok"}) + "\n")
        events = list(telemetry.follow_events(path, idle_timeout=0))
        assert [event["kind"] for event in events] == ["ok"]
