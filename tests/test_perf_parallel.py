"""Determinism and correctness of the parallel runners (perf.parallel,
sim.replicate) and the engine memo cache."""

import pytest

from repro.analysis.uncertainty import monte_carlo
from repro.errors import ParameterError, SimulationError
from repro.models.engine import (
    clear_engine_cache,
    engine_cache_info,
    evaluate_topology_cached,
    evaluate_topology,
)
from repro.models.hw_closed import hw_large, hw_small
from repro.models.sw import cp_availability, plane_requirements
from repro.controller.spec import Plane
from repro.params.software import RestartScenario
from repro.perf import chunk_bounds, memoize_model, monte_carlo_parallel
from repro.sim.controller_sim import SimulationConfig
from repro.sim.replicate import run_replications
from repro.sim.rng import derive_seeds

S2 = RestartScenario.REQUIRED


def fast_config(seed=17):
    return SimulationConfig(
        seed=seed,
        horizon_hours=4000.0,
        batches=4,
        rack_mtbf_hours=2000.0,
        host_mtbf_hours=1000.0,
        vm_mtbf_hours=500.0,
    )


class TestChunking:
    def test_chunks_cover_sample_space(self):
        bounds = chunk_bounds(10, 4)
        assert bounds == [(0, 0, 4), (1, 4, 8), (2, 8, 10)]

    def test_invalid_arguments_raise(self):
        with pytest.raises(ParameterError):
            chunk_bounds(0, 4)
        with pytest.raises(ParameterError):
            chunk_bounds(10, 0)


class TestMonteCarloParallel:
    def test_bit_identical_across_worker_counts(self, hardware):
        kwargs = dict(samples=400, seed=7, chunk_size=64)
        sequential = monte_carlo_parallel(
            hw_large, hardware, workers=1, **kwargs
        )
        parallel = monte_carlo_parallel(hw_large, hardware, workers=4, **kwargs)
        assert sequential.samples == parallel.samples

    def test_scalar_fallback_matches_vectorized(self, hardware):
        kwargs = dict(samples=300, seed=3, chunk_size=128)
        vectorized = monte_carlo_parallel(hw_small, hardware, **kwargs)
        scalar = monte_carlo_parallel(
            hw_small, hardware, vectorize=False, **kwargs
        )
        for a, b in zip(vectorized.samples, scalar.samples):
            assert a == pytest.approx(b, abs=1e-12)

    def test_chunk_size_does_not_depend_on_workers(self, hardware):
        one_chunk = monte_carlo_parallel(
            hw_large, hardware, samples=200, seed=5, chunk_size=1024
        )
        reference = monte_carlo_parallel(
            hw_large, hardware, samples=200, seed=5, chunk_size=1024, workers=2
        )
        assert one_chunk.samples == reference.samples

    def test_distribution_agrees_with_sequential_path(self, hardware):
        sequential = monte_carlo(hw_large, hardware, samples=600, seed=11)
        engine = monte_carlo_parallel(hw_large, hardware, samples=600, seed=11)
        # Different derivation trees, same distribution: compare summaries.
        assert engine.mean == pytest.approx(sequential.mean, abs=1e-6)
        assert engine.p5 == pytest.approx(sequential.p5, abs=5e-6)

    def test_monte_carlo_workers_kwarg_delegates(self, hardware):
        direct = monte_carlo_parallel(hw_large, hardware, samples=128, seed=2)
        via_wrapper = monte_carlo(
            hw_large, hardware, samples=128, seed=2, workers=1
        )
        assert direct.samples == via_wrapper.samples

    def test_invalid_workers_raise(self, hardware):
        with pytest.raises(ParameterError):
            monte_carlo_parallel(hw_large, hardware, samples=10, workers=0)


class TestDeriveSeeds:
    def test_deterministic_and_distinct(self):
        seeds = derive_seeds(42, 6)
        assert seeds == derive_seeds(42, 6)
        assert len(set(seeds)) == 6
        assert derive_seeds(42, 3) == seeds[:3]

    def test_negative_count_raises(self):
        with pytest.raises(SimulationError):
            derive_seeds(1, -1)


@pytest.mark.slow
class TestReplications:
    def test_bit_identical_across_worker_counts(
        self, spec, small, stressed_hardware, stressed_software
    ):
        kwargs = dict(config=fast_config(), replications=4)
        sequential = run_replications(
            spec, small, stressed_hardware, stressed_software, S2,
            workers=1, **kwargs,
        )
        parallel = run_replications(
            spec, small, stressed_hardware, stressed_software, S2,
            workers=4, **kwargs,
        )
        assert sequential.seeds == parallel.seeds
        for a, b in zip(sequential.results, parallel.results):
            assert (a.cp, a.shared_dp, a.local_dp, a.dp) == (
                b.cp, b.shared_dp, b.local_dp, b.dp,
            )

    def test_merged_measures(
        self, spec, small, stressed_hardware, stressed_software
    ):
        merged = run_replications(
            spec, small, stressed_hardware, stressed_software, S2,
            config=fast_config(), replications=3,
        )
        assert merged.replications == 3
        values = [result.cp for result in merged.results]
        assert merged.availability("cp") == pytest.approx(
            sum(values) / len(values)
        )
        interval = merged.interval("cp")
        assert interval.low <= merged.availability("cp") <= interval.high
        outages = merged.outage_statistics("cp")
        assert outages.count == sum(
            result.outage_statistics("cp").count for result in merged.results
        )
        with pytest.raises(SimulationError):
            merged.availability("nope")

    def test_replications_are_independent(
        self, spec, small, stressed_hardware, stressed_software
    ):
        merged = run_replications(
            spec, small, stressed_hardware, stressed_software, S2,
            config=fast_config(), replications=3,
        )
        assert len({result.cp for result in merged.results}) > 1


class TestEngineCache:
    def test_cached_engine_matches_uncached(self, spec, small, hardware, software):
        requirements = plane_requirements(spec, Plane.CP, software, S2)
        availability = {
            "rack": hardware.a_rack,
            "host": hardware.a_host,
            "vm": hardware.a_vm,
        }
        clear_engine_cache()
        cached = evaluate_topology_cached(small, requirements, availability)
        direct = evaluate_topology(small, requirements, availability)
        assert cached == direct
        before = engine_cache_info().hits
        again = evaluate_topology_cached(small, requirements, availability)
        assert again == direct
        assert engine_cache_info().hits == before + 1

    def test_memoize_model(self, spec, hardware, software):
        calls = []

        def model(params):
            calls.append(params)
            return cp_availability(spec, "small", params, software, S2)

        cached = memoize_model(model)
        first = cached(hardware)
        second = cached(hardware)
        assert first == second
        assert len(calls) == 1
        assert cached.cache_info().hits == 1
