"""Closed-form birth-death chain steady states.

The k-of-n repairable block with identical components is a birth-death
chain on the number of failed components; its steady state has the classic
product form, used as an analytic oracle for the generic CTMC solver.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError


def birth_death_steady_state(
    up_rates: Sequence[float], down_rates: Sequence[float]
) -> np.ndarray:
    """Steady state of a birth-death chain with given transition rates.

    ``up_rates[i]`` is the rate from state ``i`` to ``i+1`` and
    ``down_rates[i]`` the rate from ``i+1`` to ``i``; there are
    ``len(up_rates) + 1`` states.  The product-form solution is
    ``pi_k = pi_0 * prod_{i<k} up_rates[i]/down_rates[i]``, normalized.
    """
    if len(up_rates) != len(down_rates):
        raise ParameterError(
            "up_rates and down_rates must have the same length"
        )
    for rates, name in ((up_rates, "up_rates"), (down_rates, "down_rates")):
        for rate in rates:
            if rate <= 0:
                raise ParameterError(f"{name} must be strictly positive")
    weights = [1.0]
    for up, down in zip(up_rates, down_rates):
        weights.append(weights[-1] * up / down)
    pi = np.asarray(weights, dtype=float)
    return pi / pi.sum()
