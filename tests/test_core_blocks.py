"""Tests for the RBD algebra (repro.core.blocks)."""

import pytest

from repro.core.blocks import Basic, KOfN, Parallel, Series, identical_kofn
from repro.core.kofn import a_m_of_n
from repro.errors import ModelError, ParameterError


class TestBasic:
    def test_availability_is_probability(self):
        assert Basic("x", 0.9).availability() == pytest.approx(0.9)

    def test_override(self):
        assert Basic("x", 0.9).availability({"x": 0.5}) == pytest.approx(0.5)

    def test_rejects_empty_name(self):
        with pytest.raises(ParameterError):
            Basic("", 0.9)

    def test_rejects_bad_probability(self):
        with pytest.raises(ParameterError):
            Basic("x", 1.1)

    def test_default_probability_is_one(self):
        assert Basic("x").availability() == 1.0


class TestSeries:
    def test_multiplies(self):
        block = Series((Basic("a", 0.9), Basic("b", 0.8)))
        assert block.availability() == pytest.approx(0.72)

    def test_and_operator(self):
        block = Basic("a", 0.9) & Basic("b", 0.8)
        assert block.availability() == pytest.approx(0.72)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Series(())

    def test_single_child(self):
        assert Series((Basic("a", 0.7),)).availability() == pytest.approx(0.7)


class TestParallel:
    def test_complements_multiply(self):
        block = Parallel((Basic("a", 0.9), Basic("b", 0.8)))
        assert block.availability() == pytest.approx(1 - 0.1 * 0.2)

    def test_or_operator(self):
        block = Basic("a", 0.5) | Basic("b", 0.5)
        assert block.availability() == pytest.approx(0.75)

    def test_non_block_child_rejected(self):
        with pytest.raises(ModelError):
            Parallel((Basic("a", 0.5), "not a block"))


class TestKOfN:
    def test_matches_eq1_for_identical_leaves(self):
        block = identical_kofn(2, 3, "db", 0.999)
        assert block.availability() == pytest.approx(a_m_of_n(2, 3, 0.999))

    def test_heterogeneous_convolution(self):
        # 1-of-2 with p=0.9, 0.8: 1 - 0.1*0.2 = 0.98.
        block = KOfN(1, (Basic("a", 0.9), Basic("b", 0.8)))
        assert block.availability() == pytest.approx(0.98)

    def test_two_of_three_heterogeneous(self):
        p = [0.9, 0.8, 0.7]
        expected = (
            p[0] * p[1] * p[2]
            + p[0] * p[1] * (1 - p[2])
            + p[0] * (1 - p[1]) * p[2]
            + (1 - p[0]) * p[1] * p[2]
        )
        block = KOfN(2, tuple(Basic(f"x{i}", v) for i, v in enumerate(p)))
        assert block.availability() == pytest.approx(expected)

    def test_k_zero_always_up(self):
        assert KOfN(0, (Basic("a", 0.0),)).availability() == 1.0

    def test_k_exceeds_children(self):
        assert KOfN(3, (Basic("a", 1.0), Basic("b", 1.0))).availability() == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ModelError):
            KOfN(-1, (Basic("a", 0.5),))

    def test_nested_blocks_as_children(self):
        # k-of-n over series pairs.
        pair1 = Basic("a1", 0.9) & Basic("a2", 0.9)
        pair2 = Basic("b1", 0.9) & Basic("b2", 0.9)
        block = KOfN(1, (pair1, pair2))
        assert block.availability() == pytest.approx(1 - (1 - 0.81) ** 2)


class TestSharedComponents:
    def test_repeated_leaf_conditioned_exactly(self):
        # (a & b) | (a & c): P = P(a) * (1 - (1-P(b))(1-P(c))).
        a, b, c = Basic("a", 0.9), Basic("b", 0.8), Basic("c", 0.7)
        block = (a & b) | (a & c)
        expected = 0.9 * (1 - 0.2 * 0.3)
        assert block.availability() == pytest.approx(expected)

    def test_series_with_duplicate_is_not_squared(self):
        a = Basic("a", 0.9)
        block = Series((a, a))
        assert block.availability() == pytest.approx(0.9)

    def test_conflicting_probabilities_rejected(self):
        block = Series((Basic("a", 0.9), Basic("a", 0.8)))
        with pytest.raises(ModelError):
            block.availability()


class TestStructure:
    def test_series_structure(self):
        block = Basic("a", 0.9) & Basic("b", 0.9)
        assert block.structure({"a": True, "b": True})
        assert not block.structure({"a": True, "b": False})

    def test_parallel_structure(self):
        block = Basic("a", 0.9) | Basic("b", 0.9)
        assert block.structure({"a": False, "b": True})
        assert not block.structure({"a": False, "b": False})

    def test_missing_names_default_up(self):
        block = Basic("a", 0.9) & Basic("b", 0.9)
        assert block.structure({})

    def test_names(self):
        block = (Basic("a", 0.5) & Basic("b", 0.5)) | Basic("a", 0.5)
        assert block.names() == {"a", "b"}


class TestIdenticalKofn:
    def test_names_are_indexed(self):
        block = identical_kofn(2, 3, "db", 0.9)
        assert block.names() == {"db-1", "db-2", "db-3"}

    def test_rejects_zero_n(self):
        with pytest.raises(ModelError):
            identical_kofn(1, 0, "x", 0.9)
