"""Tests for importance measures (repro.core.importance)."""

import pytest

from repro.core.blocks import Basic, KOfN
from repro.core.cutsets import minimal_cut_sets
from repro.core.importance import (
    birnbaum_importance,
    fussell_vesely,
    improvement_potential,
)
from repro.core.structure import StructureFunction
from repro.errors import ModelError


def series_ab():
    return StructureFunction.from_block(Basic("a", 0.9) & Basic("b", 0.8))


class TestBirnbaum:
    def test_series_importance_is_partner_availability(self):
        # d(p_a p_b)/d p_a = p_b.
        importance = birnbaum_importance(series_ab(), {"a": 0.9, "b": 0.8})
        assert importance["a"] == pytest.approx(0.8)
        assert importance["b"] == pytest.approx(0.9)

    def test_redundant_component_has_low_importance(self):
        block = Basic("a", 0.99) | Basic("b", 0.99)
        importance = birnbaum_importance(
            StructureFunction.from_block(block), {"a": 0.99, "b": 0.99}
        )
        assert importance["a"] == pytest.approx(0.01)

    def test_two_of_three_symmetric(self):
        block = KOfN(2, tuple(Basic(x, 0.9) for x in "abc"))
        importance = birnbaum_importance(
            StructureFunction.from_block(block), {x: 0.9 for x in "abc"}
        )
        assert importance["a"] == pytest.approx(importance["b"])
        # I_B = P(exactly one of the other two up) = 2 p (1-p).
        assert importance["a"] == pytest.approx(2 * 0.9 * 0.1)


class TestImprovementPotential:
    def test_series(self):
        potential = improvement_potential(series_ab(), {"a": 0.9, "b": 0.8})
        # Making a perfect: 0.8 - 0.72 = 0.08.
        assert potential["a"] == pytest.approx(0.08)
        assert potential["b"] == pytest.approx(0.18)

    def test_never_negative_for_coherent_systems(self):
        block = KOfN(2, tuple(Basic(x, 0.7) for x in "abc"))
        potential = improvement_potential(
            StructureFunction.from_block(block), {x: 0.7 for x in "abc"}
        )
        assert all(v >= 0 for v in potential.values())


class TestFussellVesely:
    def test_series_shares_by_unavailability(self):
        cuts = [frozenset({"a"}), frozenset({"b"})]
        fv = fussell_vesely(cuts, {"a": 0.01, "b": 0.03})
        assert fv["a"] == pytest.approx(0.25)
        assert fv["b"] == pytest.approx(0.75)

    def test_vrouter_dominates_dp(self):
        # DP-like structure: two order-1 local cuts (1-A) and a rack cut.
        cuts = [
            frozenset({"vrouter-agent"}),
            frozenset({"vrouter-dpdk"}),
            frozenset({"rack"}),
        ]
        fv = fussell_vesely(
            cuts,
            {"vrouter-agent": 2e-5, "vrouter-dpdk": 2e-5, "rack": 1e-5},
        )
        assert fv["vrouter-agent"] > fv["rack"]

    def test_empty_cuts_rejected(self):
        with pytest.raises(ModelError):
            fussell_vesely([], {})

    def test_from_structure(self):
        block = Basic("a", 0.99) & (Basic("b", 0.99) | Basic("c", 0.99))
        cuts = minimal_cut_sets(StructureFunction.from_block(block))
        fv = fussell_vesely(cuts, {"a": 0.01, "b": 0.01, "c": 0.01})
        # Singleton cut {a} dominates the pair {b, c}.
        assert fv["a"] > 0.9
