"""Regenerate the simulation-engine determinism fixtures.

Run from the repository root::

    PYTHONPATH=src python -m tests.regen_sim_fixtures

The fixtures pin the *exact* per-replication outputs (every float at full
precision) of one fault-injection campaign and one plain replication run.
``tests/test_sim_engine_determinism.py`` re-runs both workloads — across
worker counts, warm/cold pools, and tracing on/off — and requires
bit-identical equality (``==``, no tolerance), so any engine change that
perturbs an event stream, an RNG draw order, or a signal integration fails
loudly.

The committed fixtures were generated from the pre-optimization engine
(PR 3); the hot-path overhaul (batched RNG, cached effective state, slotted
tuple-entry event queue, warm-pool dispatch) is required to reproduce them
exactly.  Regenerate (and commit the diff) only when a change is *supposed*
to alter the event stream, and say why in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faults import (
    CampaignSpec,
    CommonCauseSpec,
    MaintenanceSpec,
    RackPowerSpec,
    run_campaign,
)
from repro.models.sw_options import parse_option
from repro.controller.opencontrail import opencontrail_3x
from repro.params.hardware import HardwareParams
from repro.params.software import SoftwareParams
from repro.sim.controller_sim import SimulationConfig
from repro.sim.replicate import run_replications
from repro.topology.reference import reference_topology

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FIXTURE_NAME = "sim_engine_fixtures.json"

#: The pinned campaign: every hazard type plus limited crews, so the fixture
#: exercises stochastic clocks, correlated group failures, held maintenance
#: windows, and FIFO crew queueing in one event stream.
CAMPAIGN_SPEC = CampaignSpec(
    option="1S",
    horizon_hours=600.0,
    replications=3,
    seed=97,
    batches=4,
    hazards=(
        CommonCauseSpec("role:Control", 0.4),
        RackPowerSpec(mtbf_hours=3000.0),
        MaintenanceSpec(
            "host:H2",
            start_hours=100.0,
            period_hours=500.0,
            duration_hours=25.0,
        ),
    ),
    repair_crews=2,
)

#: The pinned plain-replication run (no hazards, stressed parameters).
REPLICATION_CONFIG = {
    "option": "1S",
    "seed": 11,
    "horizon_hours": 400.0,
    "batches": 4,
    "replications": 3,
    "a_process": 0.995,
    "a_unsupervised": 0.95,
    "process_mtbf_hours": 100.0,
    "a_vm": 0.998,
    "a_host": 0.998,
    "a_rack": 0.999,
    "rack_mtbf_hours": 2_000.0,
    "host_mtbf_hours": 1_000.0,
    "vm_mtbf_hours": 500.0,
}


def result_record(result) -> dict:
    """Every float of one :class:`SimulationResult`, at full precision."""
    return {
        "cp": result.cp,
        "sdp": result.shared_dp,
        "ldp": result.local_dp,
        "dp": result.dp,
        "outages": {
            name: {
                "count": stats.count,
                "frequency_per_hour": stats.frequency_per_hour,
                "mean_duration_hours": stats.mean_duration_hours,
            }
            for name, stats in sorted(result.outages.items())
        },
    }


def run_fixture_campaign(workers: int = 1, executor=None):
    """The pinned campaign workload (shared with the determinism tests)."""
    return run_campaign(CAMPAIGN_SPEC, workers=workers, executor=executor)


def run_fixture_replications(workers: int = 1, executor=None):
    """The pinned replication workload (shared with the determinism tests)."""
    cfg = REPLICATION_CONFIG
    spec = opencontrail_3x()
    scenario, topology_name = parse_option(cfg["option"])
    topology = reference_topology(topology_name, spec)
    hardware = HardwareParams(
        a_role=1.0,
        a_vm=cfg["a_vm"],
        a_host=cfg["a_host"],
        a_rack=cfg["a_rack"],
    )
    software = SoftwareParams.from_availabilities(
        cfg["a_process"],
        cfg["a_unsupervised"],
        mtbf_hours=cfg["process_mtbf_hours"],
    )
    config = SimulationConfig(
        seed=cfg["seed"],
        horizon_hours=cfg["horizon_hours"],
        batches=cfg["batches"],
        rack_mtbf_hours=cfg["rack_mtbf_hours"],
        host_mtbf_hours=cfg["host_mtbf_hours"],
        vm_mtbf_hours=cfg["vm_mtbf_hours"],
    )
    return run_replications(
        spec,
        topology,
        hardware,
        software,
        scenario,
        config=config,
        replications=cfg["replications"],
        workers=workers,
        executor=executor,
    )


def build_fixture() -> dict:
    campaign = run_fixture_campaign()
    replications = run_fixture_replications()
    return {
        "description": (
            "Bit-exact per-replication outputs of the pinned campaign and "
            "replication workloads; the determinism suite requires == "
            "equality across engine changes, worker counts, pool warmth, "
            "and tracing"
        ),
        "campaign": {
            "spec": CAMPAIGN_SPEC.to_dict(),
            "results": [
                result_record(r) for r in campaign.replications.results
            ],
            "seeds": list(campaign.replications.seeds),
        },
        "replications": {
            "config": dict(REPLICATION_CONFIG),
            "results": [
                result_record(r) for r in replications.results
            ],
            "seeds": list(replications.seeds),
        },
    }


def regenerate(directory: Path = GOLDEN_DIR) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / FIXTURE_NAME
    target.write_text(
        json.dumps(build_fixture(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=GOLDEN_DIR,
        help="directory to write the fixture into (default: tests/golden)",
    )
    args = parser.parse_args(argv)
    print(f"wrote {regenerate(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
