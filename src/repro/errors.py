"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """An availability, rate, or time parameter is outside its valid domain.

    Raised, for example, when an availability is not in ``[0, 1]`` or a
    mean-time-between-failures is not strictly positive.
    """


class SpecError(ReproError, ValueError):
    """A controller specification is malformed or internally inconsistent.

    Raised, for example, when a role declares a quorum requirement larger
    than its replica count, or when two processes in a role share a name.
    """


class TopologyError(ReproError, ValueError):
    """A deployment topology is malformed or violates placement rules.

    Raised, for example, when a VM is placed on an unknown host or a role
    instance is mapped to more than one VM.
    """


class ModelError(ReproError, ValueError):
    """An availability model was invoked with an unsupported configuration.

    Raised, for example, when a closed-form evaluator is asked to handle a
    topology it has no closed form for.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator entered an invalid state.

    This indicates a bug or an impossible schedule (for instance, an event
    scheduled in the past), never a statistically unlucky run.
    """


class CampaignError(ReproError, ValueError):
    """A fault-injection campaign specification is malformed.

    Raised, for example, when a :class:`repro.faults.campaign.CampaignSpec`
    names an unknown hazard kind, a beta factor outside ``[0, 1]``, or a
    maintenance window longer than its period.
    """


class NetworkError(ReproError, ValueError):
    """A control-network graph is malformed or was queried inconsistently.

    Raised, for example, when a link references an unknown endpoint or
    shared-risk group, when two graph elements share a name, or when a
    path/placement query names a node the graph does not contain.
    """


class ServeError(ReproError, RuntimeError):
    """The availability service rejected or could not complete a request.

    Carries the HTTP ``status`` the serving layer should answer with —
    4xx for protocol violations and admission shedding, 5xx for internal
    faults — so transport code can map library failures to responses
    without string matching.
    """

    def __init__(self, message: str, status: int = 500):
        super().__init__(message)
        self.status = int(status)


class ConvergenceError(ReproError, RuntimeError):
    """A numerical routine (CTMC solve, fixed point) failed to converge."""


class ObservabilityError(ReproError, RuntimeError):
    """The observability layer was misused or fed a malformed manifest.

    Raised, for example, when a second tracing session is started while one
    is active, or when a run-manifest file fails to parse.  Never raised
    from the zero-cost disabled path.
    """
