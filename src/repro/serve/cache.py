"""Single-flight, LRU-bounded result cache for the availability service.

Every query answer in :mod:`repro.serve` is a pure function of its
canonical parameters, so the service memoizes aggressively:

* **Canonical keys** — :func:`result_key` hashes the query kind plus its
  JSON payload through :func:`repro.obs.manifest.params_hash`, the same
  canonical SHA-256 that stamps run manifests.  The key embeds the manifest
  schema version, the telemetry schema version, and the package version
  (:data:`CACHE_KEY_VERSIONS`), so any schema or code bump changes every
  key and the cache self-invalidates — there is deliberately no manual
  invalidation endpoint.
* **Single flight** — concurrent requests for the same key share one
  in-flight computation.  The first caller computes; the rest await the
  same :class:`asyncio.Future` and are counted as *coalesced*.  Failures
  propagate to every waiter and are **not** cached, so a transient error
  never poisons the key.
* **LRU bound** — at most ``max_entries`` completed results are retained;
  the least-recently-used entry is evicted and counted.

The ``hits`` / ``misses`` / ``coalesced`` / ``evictions`` counters live
directly on a :class:`~repro.obs.metrics.MetricsRegistry` (the app passes
its own, so ``/metrics`` sees them with no copying); the attribute and
:meth:`~SingleFlightCache.counters` views are kept for callers and tests.
When a request trace is in scope the cache also attributes its share of
the request's latency: a hit's lookup, or a coalesced waiter's whole wait,
lands in the ``cache`` segment, while a miss charges only the cache's own
overhead (the computation it triggered accounts for itself).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Mapping

from repro.errors import ParameterError
from repro.obs.manifest import SCHEMA_VERSION, package_version, params_hash
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION
from repro.serve.tracing import current_request

__all__ = [
    "CACHE_KEY_VERSIONS",
    "DEFAULT_MAX_ENTRIES",
    "SingleFlightCache",
    "result_key",
]

#: Version fingerprint embedded in every cache key.  Bumping any schema
#: version (or releasing a new package version) changes all keys at once,
#: which is the cache's only — and sufficient — invalidation rule.
CACHE_KEY_VERSIONS: Mapping[str, Any] = {
    "manifest_schema": SCHEMA_VERSION,
    "telemetry_schema": TELEMETRY_SCHEMA_VERSION,
    "package": package_version(),
}

#: Default LRU capacity (completed results, not in-flight computations).
DEFAULT_MAX_ENTRIES = 256


def result_key(
    kind: str,
    payload: Any,
    versions: Mapping[str, Any] = CACHE_KEY_VERSIONS,
) -> str:
    """Canonical cache key for a query ``kind`` and its JSON ``payload``.

    Delegates to :func:`repro.obs.manifest.params_hash`, so two payloads
    that differ only in key order or float spelling map to the same key,
    while any semantic difference — or any version bump in ``versions`` —
    yields a different one.
    """
    return params_hash(
        {"kind": kind, "payload": payload, "versions": dict(versions)}
    )


class SingleFlightCache:
    """An asyncio single-flight memoizer with an LRU bound.

    Must be used from a single event loop (the serving loop); the compute
    callables it is handed may themselves hop to threads or process pools.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        registry: MetricsRegistry | None = None,
    ):
        if max_entries < 1:
            raise ParameterError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.registry = registry if registry is not None else MetricsRegistry()
        # Materialize the counters at zero so /metrics shows them from the
        # first scrape, not the first cache access.
        for outcome in ("hits", "misses", "coalesced", "evictions"):
            self.registry.counter(f"serve.cache.{outcome}")
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        # Which request trace is computing each in-flight key, so coalesced
        # waiters can annotate who did the work for them.
        self._inflight_owners: dict[str, str | None] = {}

    def _count(self, outcome: str) -> None:
        self.registry.counter(f"serve.cache.{outcome}").increment()

    @property
    def hits(self) -> int:
        return int(self.registry.counter("serve.cache.hits").value)

    @property
    def misses(self) -> int:
        return int(self.registry.counter("serve.cache.misses").value)

    @property
    def coalesced(self) -> int:
        return int(self.registry.counter("serve.cache.coalesced").value)

    @property
    def evictions(self) -> int:
        return int(self.registry.counter("serve.cache.evictions").value)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    async def get_with_outcome(
        self,
        key: str,
        compute: Callable[[], Awaitable[Any]],
    ) -> tuple[Any, str]:
        """The cached value plus how it was obtained.

        The second element is ``"hit"`` (served from the LRU), ``"miss"``
        (this caller ran ``compute``), or ``"coalesced"`` (another caller
        was already computing the same key and the result was shared).
        """
        trace = current_request()
        started = time.perf_counter() if trace is not None else 0.0
        if key in self._entries:
            self._entries.move_to_end(key)
            self._count("hits")
            if trace is not None:
                trace.add_segment("cache", time.perf_counter() - started)
                trace.annotate(cache="hit")
            return self._entries[key], "hit"

        pending = self._inflight.get(key)
        if pending is not None:
            self._count("coalesced")
            owner = self._inflight_owners.get(key)
            value = await asyncio.shield(pending)
            if trace is not None:
                # The whole wait rode on someone else's computation.
                trace.add_segment("cache", time.perf_counter() - started)
                trace.annotate(cache="coalesced")
                if owner is not None:
                    trace.annotate(computed_by=owner)
            return value, "coalesced"

        self._count("misses")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._inflight_owners[key] = (
            trace.context.trace_id if trace is not None else None
        )
        try:
            compute_started = time.perf_counter()
            value = await compute()
        except BaseException as error:
            future.set_exception(error)
            # A waiter may never come; don't warn about unretrieved errors.
            future.exception()
            raise
        else:
            future.set_result(value)
            self._store(key, value)
            if trace is not None:
                # Charge only the cache's own overhead; the computation
                # (batcher, kernel, thread hop) accounts for itself.
                trace.add_segment("cache", compute_started - started)
                trace.annotate(cache="miss")
            return value, "miss"
        finally:
            self._inflight.pop(key, None)
            self._inflight_owners.pop(key, None)

    async def get(
        self,
        key: str,
        compute: Callable[[], Awaitable[Any]],
    ) -> Any:
        """:meth:`get_with_outcome` without the outcome tag."""
        value, _ = await self.get_with_outcome(key, compute)
        return value

    def _store(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._count("evictions")

    def counters(self) -> dict[str, int]:
        """Current counter values, keyed for the metrics registry."""
        return {
            "serve.cache.hits": self.hits,
            "serve.cache.misses": self.misses,
            "serve.cache.coalesced": self.coalesced,
            "serve.cache.evictions": self.evictions,
        }

    def clear(self) -> None:
        """Drop completed entries (in-flight computations finish normally)."""
        self._entries.clear()
