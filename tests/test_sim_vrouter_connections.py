"""Tests for the vRouter control-connection model — section III dynamics."""

import pytest

from repro.errors import SimulationError
from repro.sim.vrouter_connections import (
    ControlEvent,
    VRouterConnectionModel,
)

CONTROLS = ("control-1", "control-2", "control-3")
DELTA = 1.0 / 60.0  # the paper's "typically within a minute"


def model(hosts=9):
    return VRouterConnectionModel(CONTROLS, hosts, rediscovery_hours=DELTA)


class TestAssignment:
    def test_round_robin_pairs(self):
        m = model()
        assert m.initial_connections(0) == ("control-1", "control-2")
        assert m.initial_connections(1) == ("control-2", "control-3")
        assert m.initial_connections(2) == ("control-3", "control-1")

    def test_pairs_balanced(self):
        # "normally roughly equal numbers of all host vrouter-agent
        # processes are connected to" each pair.
        m = model(hosts=9)
        pairs = {}
        for host in range(9):
            pair = frozenset(m.initial_connections(host))
            pairs[pair] = pairs.get(pair, 0) + 1
        assert set(pairs.values()) == {3}

    def test_out_of_range_host(self):
        with pytest.raises(SimulationError):
            model(hosts=3).initial_connections(3)


class TestSingleFailure:
    def test_one_control_failure_is_hitless(self):
        # "If control-1 fails, all vrouter-agent processes connected to
        # control-1 will rediscover ... the host DPs are not interrupted."
        events = [ControlEvent(1.0, "control-1", False)]
        assert model().drop_intervals(events, horizon=10.0) == []

    def test_sequential_failures_hitless(self):
        # control-1 fails; agents rediscover; control-2 fails an hour
        # later: every agent still holds control-3 — no interruption.
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(2.0, "control-2", False),
        ]
        assert model().drop_intervals(events, horizon=10.0) == []


class TestSimultaneousFailures:
    def test_one_third_of_hosts_impacted(self):
        # "In the unlikely event that two control processes fail
        # simultaneously, then the one-third of vrouter-agent processes
        # connected to those two Control nodes will drop packets until ...
        # connect to the remaining control process."
        m = model(hosts=9)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.0, "control-2", False),
        ]
        assert m.impacted_fraction(events, horizon=10.0) == pytest.approx(
            1.0 / 3.0
        )

    def test_drop_lasts_one_rediscovery(self):
        m = model(hosts=3)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.0, "control-2", False),
        ]
        intervals = m.drop_intervals(events, horizon=10.0)
        assert len(intervals) == 1
        assert intervals[0].host == 0
        assert intervals[0].duration == pytest.approx(DELTA)

    def test_impact_negligible_assumption(self):
        # The paper "assume[s] that the impact of simultaneous control
        # process failures on host DP availability is negligible" — check:
        # one double failure per year costs ~1 minute / 3 hosts.
        m = model(hosts=9)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.0, "control-2", False),
        ]
        horizon = 8766.0  # one year
        unavailability = m.dp_unavailability(events, horizon)
        assert unavailability < 1e-6


class TestTotalOutage:
    def test_all_controls_down_kills_every_host(self):
        # "If control-3 subsequently fails, then every host DP will go
        # down because BGP forwarding tables will be flushed."
        m = model(hosts=6)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(2.0, "control-2", False),
            ControlEvent(3.0, "control-3", False),
        ]
        assert m.impacted_fraction(events, horizon=10.0) == 1.0

    def test_recovery_after_first_control_returns(self):
        m = model(hosts=3)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(2.0, "control-2", False),
            ControlEvent(3.0, "control-3", False),
            ControlEvent(5.0, "control-2", True),
        ]
        intervals = m.drop_intervals(events, horizon=10.0)
        assert len(intervals) == 3
        for interval in intervals:
            assert interval.start == 3.0
            assert interval.end == pytest.approx(5.0 + DELTA)

    def test_never_recovered_truncates_at_horizon(self):
        m = model(hosts=3)
        events = [
            ControlEvent(1.0, c, False) for c in CONTROLS
        ]
        intervals = m.drop_intervals(events, horizon=4.0)
        assert all(i.end == 4.0 for i in intervals)


class TestFlapping:
    def test_rediscovery_interrupted_by_target_loss(self):
        # Host 0 loses both connections; control-3 is up so rediscovery
        # starts — but control-3 dies before the delay elapses.
        m = model(hosts=3)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.0, "control-2", False),
            ControlEvent(1.0 + DELTA / 2, "control-3", False),
            ControlEvent(2.0, "control-1", True),
        ]
        intervals = [
            i for i in m.drop_intervals(events, horizon=10.0) if i.host == 0
        ]
        assert len(intervals) == 1
        assert intervals[0].start == 1.0
        assert intervals[0].end == pytest.approx(2.0 + DELTA)

    def test_replacement_connection_can_fail_too(self):
        # Host 0 (c1, c2): c1 dies; before the top-up lands, c2 dies.
        m = model(hosts=3)
        events = [
            ControlEvent(1.0, "control-1", False),
            ControlEvent(1.0 + DELTA / 2, "control-2", False),
        ]
        intervals = [
            i for i in m.drop_intervals(events, horizon=10.0) if i.host == 0
        ]
        assert len(intervals) == 1
        assert intervals[0].start == pytest.approx(1.0 + DELTA / 2)

    def test_validation(self):
        with pytest.raises(SimulationError):
            VRouterConnectionModel(("only-one",), 3)
        with pytest.raises(SimulationError):
            VRouterConnectionModel(CONTROLS, 0)
        with pytest.raises(SimulationError):
            model().drop_intervals(
                [ControlEvent(99.0, "control-1", False)], horizon=10.0
            )
        with pytest.raises(SimulationError):
            model().drop_intervals(
                [ControlEvent(1.0, "ghost", False)], horizon=10.0
            )
