"""Fault-campaign throughput and worker scaling (:mod:`repro.faults`).

Times a hazard-laden campaign (common cause + rack power + maintenance +
limited crews over the small deployment) sequentially and across process
workers, checks that the two runs are bit-identical, and appends a
``faults_campaign`` section to ``BENCH_perf.json`` (other sections are
preserved).  Runnable as a pytest benchmark *or* directly as a script —
``python benchmarks/bench_faults_campaign.py --horizon 300
--replications 5 --workers 2 --repeats 1`` is the CI smoke invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # script mode: make src/ importable without install
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults import (
    CampaignSpec,
    CommonCauseSpec,
    MaintenanceSpec,
    RackPowerSpec,
    run_campaign,
)
from repro.reporting.tables import format_table

BENCH_SEED = 20190324  # shared with bench_perf_engine.py
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def _best_of(fn, repeats: int):
    best_time, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def _spec(horizon: float, replications: int) -> CampaignSpec:
    return CampaignSpec(
        option="1S",
        horizon_hours=horizon,
        replications=replications,
        seed=BENCH_SEED,
        hazards=(
            CommonCauseSpec("role:Control", 0.4),
            RackPowerSpec(mtbf_hours=3000.0),
            MaintenanceSpec(
                "host:H2", start_hours=100.0,
                period_hours=500.0, duration_hours=25.0,
            ),
        ),
        repair_crews=2,
    )


def _fingerprint(result):
    return tuple(
        (r.cp, r.shared_dp, r.local_dp, r.dp)
        for r in result.replications.results
    )


def run_faults_bench(
    horizon: float = 4000.0,
    replications: int = 8,
    workers: int = 4,
    repeats: int = 3,
) -> dict:
    """Time the campaign runner and return the BENCH_perf.json section."""
    spec = _spec(horizon, replications)

    sequential_s, sequential = _best_of(
        lambda: run_campaign(spec, workers=1), repeats
    )
    parallel_s, parallel = _best_of(
        lambda: run_campaign(spec, workers=workers), repeats
    )
    if _fingerprint(parallel) != _fingerprint(sequential):
        raise AssertionError(
            "campaign results differ across worker counts"
        )

    events = sum(stat["events"] for stat in sequential.stats)
    return {
        "seed": BENCH_SEED,
        "cpus": os.cpu_count() or 1,
        "option": spec.option,
        "horizon_hours": horizon,
        "replications": replications,
        "workers": workers,
        "repeats": repeats,
        "events": events,
        "injections": sequential.total_injections(),
        "repairs_queued": sequential.total_queued,
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": sequential_s / parallel_s,
        "events_per_second_sequential": events / sequential_s,
        "bit_identical_across_workers": True,
    }


def _report(record: dict, out_path: Path) -> None:
    rows = [
        (
            f"campaign {record['replications']}x"
            f"{record['horizon_hours']:.0f}h",
            f"{record['sequential_s'] * 1e3:.1f}",
            f"{record['parallel_s'] * 1e3:.1f}",
            f"{record['speedup']:.1f}x",
        ),
    ]
    print(
        "\n"
        + format_table(
            ("Workload", "Sequential (ms)", "Parallel (ms)", "Speedup"),
            rows,
            title=(
                f"Fault campaigns (workers={record['workers']}, "
                f"{record['events']} events, "
                f"{record['injections']} injections)"
            ),
        )
    )
    merged = {}
    if out_path.exists():
        merged = json.loads(out_path.read_text(encoding="utf-8"))
    merged["faults_campaign"] = record
    out_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")


def _speedup_ok(record: dict) -> bool:
    """Speedup target, only enforceable where the cores actually exist.

    8 replications over 4 workers amortize the pool startup comfortably —
    but a single-core box (some CI runners) cannot speed anything up, so
    the target scales away below the requested worker count.
    """
    if record["cpus"] < record["workers"]:
        return True
    return record["speedup"] >= 1.5


def test_faults_campaign():
    record = run_faults_bench()
    _report(record, DEFAULT_OUT)
    assert record["bit_identical_across_workers"]
    assert record["injections"] > 0
    assert record["repairs_queued"] > 0
    assert _speedup_ok(record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=float, default=4000.0)
    parser.add_argument("--replications", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the parallel runner meets the speedup target",
    )
    args = parser.parse_args(argv)
    record = run_faults_bench(
        horizon=args.horizon,
        replications=args.replications,
        workers=args.workers,
        repeats=args.repeats,
    )
    _report(record, args.out)
    if args.check:
        assert _speedup_ok(record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
