"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "TABLE III" in out

    def test_hw(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "Small" in out and "Large" in out
        assert "0.9999887" in out

    def test_hw_custom_parameters(self, capsys):
        assert main(["hw", "--a-rack", "0.9999"]) == 0
        out = capsys.readouterr().out
        assert "Small" in out

    def test_sw(self, capsys):
        assert main(["sw"]) == 0
        out = capsys.readouterr().out
        for option in ("1S", "2S", "1L", "2L"):
            assert option in out

    def test_fig3_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig3.csv"
        assert main(["fig3", "--points", "3", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "Small" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--points", "3"]) == 0
        assert "1S" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5", "--points", "3"]) == 0
        assert "2L" in capsys.readouterr().out

    def test_modes(self, capsys):
        assert main(["modes", "--option", "1S", "--plane", "dp", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "vrouter" in out

    def test_simulate(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--option",
                    "2S",
                    "--horizon",
                    "2000",
                    "--batches",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Monte-Carlo validation" in out
        assert "LDP" in out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliTelemetry:
    def test_faults_telemetry_stream_and_tail(self, capsys, tmp_path):
        stream = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "faults",
                    "--horizon", "500",
                    "--replications", "2",
                    "--telemetry", str(stream),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "downtime attribution" in out
        assert f"wrote telemetry stream {stream}" in out
        assert stream.exists()

        assert main(["obs", "tail", str(stream)]) == 0
        tail = capsys.readouterr().out
        assert "run.start" in tail
        assert "campaign.start" in tail
        assert "progress" in tail
        assert "campaign.end" in tail
        assert "event(s)" in tail

    def test_obs_tail_without_file_errors(self, capsys):
        assert main(["obs", "tail"]) == 2
        assert "requires a telemetry file" in capsys.readouterr().err

    def test_faults_json_payload_includes_attribution(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "faults",
                    "--horizon", "500",
                    "--replications", "2",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        attribution = payload["attribution"]
        for plane in ("cp", "sdp", "ldp", "dp"):
            record = attribution[plane]
            assert record["total_seconds"] == pytest.approx(
                sum(record["components"].values())
            )


class TestCliNetwork:
    def test_evaluate_reference_graph(self, capsys, tmp_path):
        json_path = tmp_path / "eval.json"
        csv_path = tmp_path / "eval.csv"
        assert (
            main(
                [
                    "network", "evaluate", "--graph", "ring",
                    "--json", str(json_path), "--csv", str(csv_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Control-path availability" in out
        assert "Union bound" in out
        for switch in ("S1", "S6"):
            assert switch in out

        import json

        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["graph"]["name"] == "ring-6"
        from repro.network import NetworkGraph

        restored = NetworkGraph.from_dict(payload["graph"])
        assert restored.graph_hash() == payload["graph_hash"]
        records = {r["switch"]: r for r in payload["switches"]}
        assert set(records) == set(restored.switches)
        for record in records.values():
            assert record["union_bound"] >= record["unavailability"] - 1e-12

        lines = csv_path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("Switch,")
        assert len(lines) == 1 + len(records)

    def test_evaluate_bounded_order_and_graph_file(self, capsys, tmp_path):
        from repro.topology.network_reference import backbone_network

        graph_path = tmp_path / "graph.json"
        graph_path.write_text(
            backbone_network().to_json(), encoding="utf-8"
        )
        assert (
            main(
                [
                    "network", "evaluate",
                    "--graph-file", str(graph_path),
                    "--max-order", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backbone-mesh" in out
        assert "cut order <= 2" in out
        assert "-" in out  # bounded order: no path lower bound

    def test_place_reports_bound_and_gap(self, capsys, tmp_path):
        json_path = tmp_path / "place.json"
        assert (
            main(
                [
                    "network", "place", "--graph", "backbone",
                    "--k", "2", "--json", str(json_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet A_CP:" in out
        assert "bound:" in out
        assert "evaluations:" in out

        import json

        payload = json.loads(json_path.read_text(encoding="utf-8"))
        placement = payload["placement"]
        assert placement["sites"] == ["CTRL1", "CTRL2"]
        assert placement["method"] == "exact"
        assert placement["bound"] >= placement["availability"]

    def test_unknown_reference_graph_errors(self, capsys):
        assert main(["network", "evaluate", "--graph", "moebius"]) == 2
        assert "unknown reference graph" in capsys.readouterr().err

    def test_trace_writes_network_manifest(self, capsys, tmp_path):
        from repro.obs.manifest import RunManifest

        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "network", "place", "--graph", "ring",
                    "--trace", str(trace),
                ]
            )
            == 0
        )
        assert "wrote trace manifest" in capsys.readouterr().out
        manifest = RunManifest.load(trace)
        assert manifest.command == "network"
        assert manifest.topology == "ring-6"

    def test_telemetry_stream_and_tail(self, capsys, tmp_path):
        stream = tmp_path / "net.jsonl"
        assert (
            main(
                [
                    "network", "place", "--graph", "fat_tree",
                    "--telemetry", str(stream),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"wrote telemetry stream {stream}" in out
        assert stream.exists()

        assert main(["obs", "tail", str(stream)]) == 0
        tail = capsys.readouterr().out
        assert "run.start" in tail
        assert "placement.start" in tail
        assert "placement.candidate" in tail
        assert "placement.end" in tail
        assert "run.end" in tail


class TestCliServe:
    def test_obs_tail_follow_with_idle_timeout(self, capsys, tmp_path):
        import json

        stream = tmp_path / "live.jsonl"
        events = [
            {"run": 0, "seq": 0, "kind": "run.start"},
            {"run": 0, "seq": 1, "kind": "heartbeat"},
        ]
        stream.write_text(
            "".join(json.dumps(event) + "\n" for event in events),
            encoding="utf-8",
        )
        assert (
            main(
                [
                    "obs", "tail", str(stream),
                    "--follow", "--idle-timeout", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "run.start" in out
        assert "heartbeat" in out
        assert "2 event(s)" in out

    def test_query_rejects_invalid_json_body(self, capsys):
        assert main(["query", "{not json"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_serve_help_lists_admission_flags(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--max-queue-depth" in out
        assert "--max-tenant-inflight" in out
        assert "--cache-entries" in out
