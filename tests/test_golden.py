"""Golden-file regression wall for the paper's headline numbers.

The fixtures under ``tests/golden/`` pin the Small/Medium/Large HW-centric
availabilities (Eqs. 3, 6, 8) and the four SW-centric options' plane values
(Eqs. 9-15) as computed at the paper's default parameters.  Every test here
recomputes the live value and diffs it against the stored golden at 1e-12
relative tolerance — tight enough that any numerical change in the model
stack (a reordered sum, a "harmless" refactor, a changed constant) fails,
while remaining robust to benign platform variation well below the paper's
reported precision.

To intentionally move the numbers: rerun ``PYTHONPATH=src python -m
tests.regen_golden`` and commit the diff alongside the change that
justifies it.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.models.sw_options import PAPER_OPTIONS, evaluate_option
from repro.params.defaults import PAPER_HARDWARE, PAPER_SOFTWARE
from repro.units import downtime_minutes_per_year
from tests.regen_golden import (
    GOLDEN_DIR,
    GOLDEN_RECORDS,
    hw_reference_record,
    sw_options_record,
)

REL_TOL = 1e-12
#: Absolute floor for values that can legitimately be ~0 (downtime minutes).
ABS_TOL = 1e-15

HW_MODELS = {"small": hw_small, "medium": hw_medium, "large": hw_large}


def _load(filename: str) -> dict:
    path = GOLDEN_DIR / filename
    assert path.exists(), (
        f"golden file {path} is missing; regenerate with "
        f"`PYTHONPATH=src python -m tests.regen_golden`"
    )
    return json.loads(path.read_text(encoding="utf-8"))


def _diff(label: str, live: float, golden: float) -> None:
    assert math.isclose(live, golden, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
        f"{label}: live value {live!r} drifted from golden {golden!r} "
        f"(delta {live - golden:.3e}); if intentional, regenerate via "
        f"`python -m tests.regen_golden` and commit the diff"
    )


@pytest.mark.parametrize("topology", sorted(HW_MODELS))
def test_hw_availability_matches_golden(topology):
    golden = _load("hw_reference.json")["topologies"][topology]
    live = HW_MODELS[topology](PAPER_HARDWARE)
    _diff(f"hw.{topology}.availability", live, golden["availability"])
    _diff(
        f"hw.{topology}.downtime",
        downtime_minutes_per_year(live),
        golden["downtime_minutes_per_year"],
    )


def test_hw_golden_hardware_matches_defaults():
    """The golden was generated at the same defaults the tests use."""
    golden = _load("hw_reference.json")["hardware"]
    assert golden == {
        "a_role": PAPER_HARDWARE.a_role,
        "a_vm": PAPER_HARDWARE.a_vm,
        "a_host": PAPER_HARDWARE.a_host,
        "a_rack": PAPER_HARDWARE.a_rack,
    }


@pytest.mark.parametrize("option", PAPER_OPTIONS)
def test_sw_option_matches_golden(spec, option):
    golden = _load("sw_options.json")["options"][option]
    result = evaluate_option(spec, option, PAPER_HARDWARE, PAPER_SOFTWARE)
    _diff(f"{option}.cp", result.cp, golden["cp"])
    _diff(f"{option}.shared_dp", result.shared_dp, golden["shared_dp"])
    _diff(f"{option}.local_dp", result.local_dp, golden["local_dp"])
    _diff(f"{option}.dp", result.dp, golden["dp"])
    _diff(
        f"{option}.cp_downtime",
        result.cp_downtime_minutes,
        golden["cp_downtime_minutes"],
    )
    _diff(
        f"{option}.dp_downtime",
        result.dp_downtime_minutes,
        golden["dp_downtime_minutes"],
    )


def test_goldens_are_current():
    """The committed files byte-match what the regen script would write.

    Catches a regenerated-but-not-committed (or edited-by-hand) golden, and
    doubles as an exact (not just 1e-12) end-to-end comparison.
    """
    for filename, build in GOLDEN_RECORDS.items():
        stored = json.loads(
            (GOLDEN_DIR / filename).read_text(encoding="utf-8")
        )
        assert stored == build(), (
            f"{filename} is stale; rerun `python -m tests.regen_golden`"
        )


def test_regen_script_is_runnable(tmp_path):
    """`python -m tests.regen_golden` stays invocable as documented.

    Writes into a scratch directory (``--out``) so a run under mutated
    sources can never clobber the committed goldens.
    """
    repo_root = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, "-m", "tests.regen_golden", "--out", str(tmp_path)],
        cwd=repo_root,
        env={
            "PYTHONPATH": str(repo_root / "src"),
            "PATH": "/usr/bin:/bin",
        },
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "hw_reference.json" in proc.stdout
    regenerated = json.loads(
        (tmp_path / "hw_reference.json").read_text(encoding="utf-8")
    )
    assert regenerated == json.loads(
        (GOLDEN_DIR / "hw_reference.json").read_text(encoding="utf-8")
    )


def test_golden_fixtures_exercised():
    """Both golden records are covered by a live diff above."""
    assert set(GOLDEN_RECORDS) == {"hw_reference.json", "sw_options.json"}
    assert set(hw_reference_record()["topologies"]) == set(HW_MODELS)
    assert set(sw_options_record()["options"]) == set(PAPER_OPTIONS)
