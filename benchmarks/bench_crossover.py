"""A8 — crossover analysis: where the design guidance flips.

Fig. 4's curves imply a crossover the paper does not call out explicitly:
below a certain process maturity, the one-rack supervisor-independent
option (1S) yields a *better* control plane than the three-rack
supervisor-dependent option (2L) — rack money cannot buy back supervisor
downtime.  This bench locates the flip point precisely.
"""

import pytest

from repro.analysis.crossover import option_crossover_orders
from repro.reporting.tables import format_table
from repro.units import scale_downtime


def find_crossovers(spec, hardware, software):
    pairs = (("1S", "2L"), ("1S", "2S"), ("1L", "2L"), ("1S", "1L"))
    rows = []
    for a, b in pairs:
        crossing = option_crossover_orders(spec, hardware, software, a, b)
        rows.append((a, b, crossing))
    return rows


def test_crossover(benchmark, spec, hardware, software):
    rows = benchmark(find_crossovers, spec, hardware, software)
    print(
        "\n"
        + format_table(
            ("Option A", "Option B", "CP crossover (orders)", "A at crossover"),
            [
                (
                    a,
                    b,
                    "none (dominated)" if x is None else f"{x:+.3f}",
                    ""
                    if x is None
                    else f"{scale_downtime(software.a_process, x):.6f}",
                )
                for a, b, x in rows
            ],
            title="Ablation A8: design-guidance crossovers on the CP",
        )
    )
    crossings = {(a, b): x for a, b, x in rows}
    # The headline flip: 1S vs 2L crosses between -0.6 and -0.4 orders,
    # i.e. around process availability A ~ 0.99993.
    assert crossings[("1S", "2L")] == pytest.approx(-0.5, abs=0.1)
    # Same-topology scenario pairs and same-scenario topology pairs are
    # dominated throughout: no crossover.
    assert crossings[("1S", "2S")] is None
    assert crossings[("1L", "2L")] is None
    assert crossings[("1S", "1L")] is None
