"""Property-based tests for the RBD algebra and cut-set duality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import Basic, Block, KOfN, Parallel, Series
from repro.core.cutsets import (
    exact_unavailability,
    minimal_cut_sets,
    minimal_path_sets,
)
from repro.core.structure import StructureFunction

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def rbd_trees(draw, depth: int = 2, prefix: str = "c") -> Block:
    """Random RBD trees with distinct leaf names."""
    counter = draw(st.integers(min_value=0, max_value=0))  # noqa: F841
    index = [0]

    def build(d: int, tag: str) -> Block:
        if d == 0 or draw(st.booleans()) and d < depth:
            index[0] += 1
            return Basic(f"{prefix}{tag}-{index[0]}", draw(probabilities))
        kind = draw(st.sampled_from(["series", "parallel", "kofn"]))
        width = draw(st.integers(min_value=1, max_value=3))
        children = tuple(build(d - 1, f"{tag}{i}") for i in range(width))
        if kind == "series":
            return Series(children)
        if kind == "parallel":
            return Parallel(children)
        k = draw(st.integers(min_value=0, max_value=width))
        return KOfN(k, children)

    return build(depth, "r")


class TestAlgebraBounds:
    @given(tree=rbd_trees())
    @settings(max_examples=60)
    def test_availability_is_probability(self, tree):
        assert 0.0 <= tree.availability() <= 1.0

    @given(tree=rbd_trees())
    @settings(max_examples=40)
    def test_matches_exhaustive_enumeration(self, tree):
        # The compositional evaluation equals brute-force state enumeration.
        structure = StructureFunction.from_block(tree)
        probabilities_map = {
            leaf.name: leaf.probability for leaf in tree.leaves()
        }
        assert tree.availability() == pytest.approx(
            structure.availability(probabilities_map), abs=1e-10
        )


class TestCompositionLaws:
    @given(p=probabilities, q=probabilities)
    def test_series_bounded_by_children(self, p, q):
        block = Basic("a", p) & Basic("b", q)
        assert block.availability() <= min(p, q) + 1e-12

    @given(p=probabilities, q=probabilities)
    def test_parallel_bounded_by_children(self, p, q):
        block = Basic("a", p) | Basic("b", q)
        assert block.availability() >= max(p, q) - 1e-12

    @given(p=probabilities)
    def test_series_parallel_duality(self, p):
        # 1 - P_series(p, p) over failures = P_parallel over complements.
        series = (Basic("a", p) & Basic("b", p)).availability()
        parallel = (Basic("a", 1 - p) | Basic("b", 1 - p)).availability()
        assert series == pytest.approx(1 - parallel, abs=1e-12)


class TestCutPathDuality:
    @given(tree=rbd_trees(depth=2))
    @settings(max_examples=25, deadline=None)
    def test_cut_sets_reconstruct_unavailability(self, tree):
        structure = StructureFunction.from_block(tree)
        names = structure.names
        all_up = {n: True for n in names}
        if not structure(all_up):
            return  # no cut sets defined for a dead system
        cuts = minimal_cut_sets(structure)
        if len(cuts) > 6:
            return  # keep inclusion-exclusion tractable
        unavailability = {
            leaf.name: 1 - leaf.probability for leaf in tree.leaves()
        }
        expected = 1 - tree.availability()
        assert exact_unavailability(cuts, unavailability) == pytest.approx(
            expected, abs=1e-9
        )

    @given(tree=rbd_trees(depth=2))
    @settings(max_examples=25, deadline=None)
    def test_every_path_hits_every_cut(self, tree):
        structure = StructureFunction.from_block(tree)
        if not structure({n: True for n in structure.names}):
            return
        if not structure({n: False for n in structure.names}):
            cuts = minimal_cut_sets(structure)
            paths = minimal_path_sets(structure)
            for cut in cuts:
                for path in paths:
                    assert cut & path, (cut, path)
