"""Single-flight cache and micro-batching semantics."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ParameterError
from repro.serve.batching import MicroBatcher
from repro.serve.cache import (
    CACHE_KEY_VERSIONS,
    SingleFlightCache,
    result_key,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestResultKey:
    def test_is_order_insensitive(self):
        a = result_key("hw", {"a_role": 0.999, "a_vm": 0.99})
        b = result_key("hw", {"a_vm": 0.99, "a_role": 0.999})
        assert a == b

    def test_distinguishes_kind_and_payload(self):
        base = result_key("hw", {"a_role": 0.999})
        assert result_key("option", {"a_role": 0.999}) != base
        assert result_key("hw", {"a_role": 0.998}) != base

    def test_version_bump_invalidates_every_key(self):
        # The invalidation rule: keys embed the schema/package versions,
        # so bumping any of them changes all keys at once.
        payload = {"option": "2S"}
        current = result_key("option", payload)
        bumped = dict(CACHE_KEY_VERSIONS)
        bumped["telemetry_schema"] = bumped["telemetry_schema"] + 1
        assert result_key("option", payload, versions=bumped) != current

    def test_embeds_all_schema_versions(self):
        from repro.obs.manifest import SCHEMA_VERSION
        from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION

        assert CACHE_KEY_VERSIONS["manifest_schema"] == SCHEMA_VERSION
        assert (
            CACHE_KEY_VERSIONS["telemetry_schema"] == TELEMETRY_SCHEMA_VERSION
        )
        assert "package" in CACHE_KEY_VERSIONS


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self):
        cache = SingleFlightCache()
        calls = 0

        async def compute():
            nonlocal calls
            calls += 1
            await asyncio.sleep(0.01)
            return 42

        async def scenario():
            return await asyncio.gather(
                *(
                    cache.get_with_outcome("k", compute)
                    for _ in range(8)
                )
            )

        results = run(scenario())
        assert calls == 1
        assert [value for value, _ in results] == [42] * 8
        outcomes = sorted(outcome for _, outcome in results)
        assert outcomes.count("miss") == 1
        assert outcomes.count("coalesced") == 7
        assert cache.misses == 1
        assert cache.coalesced == 7

    def test_completed_entry_is_a_hit(self):
        cache = SingleFlightCache()

        async def compute():
            return "value"

        async def scenario():
            first = await cache.get_with_outcome("k", compute)
            second = await cache.get_with_outcome("k", compute)
            return first, second

        (value1, outcome1), (value2, outcome2) = run(scenario())
        assert (outcome1, outcome2) == ("miss", "hit")
        assert value1 == value2 == "value"
        assert cache.hits == 1

    def test_lru_bound_evicts_oldest(self):
        cache = SingleFlightCache(max_entries=2)

        async def scenario():
            async def make(value):
                return value

            await cache.get("a", lambda: make(1))
            await cache.get("b", lambda: make(2))
            await cache.get("a", lambda: make(1))  # refresh a
            await cache.get("c", lambda: make(3))  # evicts b
            assert "b" not in cache
            assert cache.evictions == 1
            assert "a" in cache and "c" in cache
            # Re-fetching the evicted key is a fresh miss (which in turn
            # evicts the now-oldest entry, keeping the bound).
            return await cache.get_with_outcome("b", lambda: make(2))

        _, outcome = run(scenario())
        assert outcome == "miss"
        assert cache.evictions == 2
        assert len(cache) == 2

    def test_failures_propagate_and_are_not_cached(self):
        cache = SingleFlightCache()
        calls = 0

        async def explode():
            nonlocal calls
            calls += 1
            await asyncio.sleep(0.01)
            raise RuntimeError("boom")

        async def scenario():
            results = await asyncio.gather(
                *(cache.get("k", explode) for _ in range(3)),
                return_exceptions=True,
            )
            return results

        results = run(scenario())
        assert calls == 1
        assert all(isinstance(result, RuntimeError) for result in results)
        assert "k" not in cache

        async def recover():
            return await cache.get_with_outcome("k", ok)

        async def ok():
            return "fine"

        value, outcome = run(recover())
        assert (value, outcome) == ("fine", "miss")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ParameterError):
            SingleFlightCache(max_entries=0)

    def test_counters_mapping(self):
        cache = SingleFlightCache()
        counters = cache.counters()
        assert set(counters) == {
            "serve.cache.hits",
            "serve.cache.misses",
            "serve.cache.coalesced",
            "serve.cache.evictions",
        }


class TestMicroBatcher:
    def test_concurrent_requests_lower_to_one_call(self):
        calls: list[list] = []

        def lower(batch):
            calls.append(batch)
            return [item * 10 for item in batch]

        batcher = MicroBatcher(lower, window_seconds=0.005, max_batch=64)

        async def scenario():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(5))
            )

        results = run(scenario())
        assert results == [0, 10, 20, 30, 40]
        assert len(calls) == 1  # one lowered call for the burst
        assert batcher.batches == 1
        assert batcher.largest_batch == 5

    def test_batched_equals_per_request_exactly(self):
        """A batched hw evaluation is ``==`` to one-at-a-time evaluation."""
        from repro.serve.app import _hw_models, _lower_hw

        params = [
            {
                "a_role": 0.999 + 0.0001 * i,
                "a_vm": 0.9995,
                "a_host": 0.9992,
                "a_rack": 0.9999,
            }
            for i in range(7)
        ]
        for model_fn in _hw_models().values():
            batched = _lower_hw(model_fn, params)
            individual = [_lower_hw(model_fn, [item])[0] for item in params]
            assert batched == individual  # exact, not approximate

    def test_full_batch_flushes_immediately(self):
        calls: list[list] = []

        def lower(batch):
            calls.append(batch)
            return list(batch)

        batcher = MicroBatcher(lower, window_seconds=10.0, max_batch=3)

        async def scenario():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(3))
            )

        # window is 10s, so only the max_batch trigger can flush in time
        results = run(asyncio.wait_for(scenario(), timeout=5.0))
        assert results == [0, 1, 2]
        assert len(calls) == 1

    def test_lowering_failure_reaches_every_waiter(self):
        def lower(batch):
            raise ValueError("kernel rejected the batch")

        batcher = MicroBatcher(lower, window_seconds=0.001)

        async def scenario():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(3)),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(result, ValueError) for result in results)

    def test_result_length_mismatch_is_an_error(self):
        from repro.errors import ServeError

        batcher = MicroBatcher(lambda batch: [1], window_seconds=0.001)

        async def scenario():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(2)),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(result, ServeError) for result in results)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ParameterError):
            MicroBatcher(lambda batch: batch, window_seconds=-1.0)
        with pytest.raises(ParameterError):
            MicroBatcher(lambda batch: batch, max_batch=0)
