"""Batched (switch, site-set) control-path sweeps over one SDP compile.

Placement search and availability sweeps evaluate the *same graph* under
many candidate site subsets.  Recompiling per subset wastes the key
property of the sum-of-disjoint-products kernel: the disjoint terms depend
only on path sets, never on probabilities.  This module compiles each
switch's control paths **once against the whole candidate pool** and turns
"which sites are chosen" into data:

* every candidate ``c`` gets a virtual indicator element ``ctrl@c`` whose
  availability is 1.0 when ``c`` is in the evaluated subset and 0.0 when
  it is not — a path terminating at ``c`` carries ``ctrl@c``, so under a
  given subset the terms through unchosen sites vanish exactly;
* candidate site *nodes* keep their real availability element, so a path
  may transit an unchosen site's router en route to a chosen one — the
  enumeration therefore continues through candidate sites instead of
  stopping at the first one reached;
* terms are deduplicated across switches (a no-op on asymmetric graphs,
  free when switches share path structure), and every (site-set, switch)
  availability is then a handful of segmented array reductions
  (:func:`repro.perf.vectorized.gather_segment_products` /
  :func:`~repro.perf.vectorized.segment_sums`) over a factor matrix with
  one row per site set.

The result is exact — identical (to float rounding) to calling
:func:`repro.network.paths.exact_control_path_unavailability` per pair —
at array-op throughput, which is what the local-search placement in
:mod:`repro.network.placement` leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.sdp import canonical_path_sets, sdp_terms
from repro.errors import NetworkError
from repro.network.graph import NetworkGraph, NetworkLink
from repro.network.paths import _prune
from repro.obs import telemetry
from repro.perf.vectorized import gather_segment_products, segment_sums
from repro.units import check_probability

__all__ = [
    "CTRL_PREFIX",
    "PairSweepPlan",
    "PairSweepResult",
    "indicator_path_sets",
    "compile_pair_sweep",
    "sweep_site_sets",
]

#: Prefix of the virtual choice-indicator element of candidate site ``c``.
CTRL_PREFIX = "ctrl@"


@lru_cache(maxsize=4096)
def _indicator_path_sets_cached(
    graph: NetworkGraph, switch: str, candidates: tuple[str, ...]
) -> tuple[frozenset[str], ...]:
    nodes, links, _ = _prune(graph, switch, candidates)
    node_set = set(nodes)
    candidate_set = {c for c in candidates if c in node_set}
    incident: dict[str, list[NetworkLink]] = {name: [] for name in nodes}
    for link in links:
        incident[link.a].append(link)
        incident[link.b].append(link)
    found: list[frozenset[str]] = []
    elements: list[str] = [switch]
    visited = {switch}

    def walk(current: str) -> None:
        for link in incident[current]:
            neighbor = link.other(current)
            if neighbor in visited:
                continue
            step = [link.name, neighbor]
            if link.srg is not None:
                step.append(link.srg)
            if neighbor in candidate_set:
                found.append(
                    frozenset((*elements, *step, CTRL_PREFIX + neighbor))
                )
            visited.add(neighbor)
            elements.extend(step)
            walk(neighbor)
            del elements[-len(step):]
            visited.discard(neighbor)

    if candidate_set:
        walk(switch)
    return canonical_path_sets(found)


def indicator_path_sets(
    graph: NetworkGraph, switch: str, candidates: Sequence[str]
) -> tuple[frozenset[str], ...]:
    """Minimal path sets against the whole candidate pool (memoized).

    Like :func:`repro.network.paths.control_path_path_sets`, but each path
    terminates at *some* candidate site ``c`` and carries the virtual
    indicator ``ctrl@c`` — and the walk keeps going through candidate
    sites, because a site not chosen in a given subset is still a transit
    router.  Evaluating the compiled union with ``ctrl@c = 1`` for chosen
    sites and ``0`` otherwise reproduces the fixed-subset availability
    exactly, for every subset, from one enumeration.
    """
    return _indicator_path_sets_cached(graph, switch, tuple(candidates))


def _check_pool(
    graph: NetworkGraph,
    switches: Iterable[str] | None,
    candidates: Iterable[str] | None,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    node_names = {node.name for node in graph.nodes}
    pool = tuple(candidates) if candidates is not None else graph.sites
    if not pool:
        raise NetworkError(
            f"graph {graph.name!r} has no candidate controller sites"
        )
    if len(set(pool)) != len(pool):
        raise NetworkError("candidate sites must be distinct")
    for site in pool:
        if site not in node_names:
            raise NetworkError(f"graph {graph.name!r} has no node {site!r}")
    chosen_switches = (
        tuple(switches) if switches is not None else graph.switches
    )
    if not chosen_switches:
        raise NetworkError(f"graph {graph.name!r} has no switches to evaluate")
    for switch in chosen_switches:
        if switch not in node_names:
            raise NetworkError(f"graph {graph.name!r} has no node {switch!r}")
        if switch in pool:
            raise NetworkError(
                f"switch {switch!r} cannot also be a candidate site"
            )
    return chosen_switches, pool


@dataclass(frozen=True, eq=False)
class PairSweepResult:
    """Availability of every (site-set, switch) pair of one batched sweep.

    Attributes:
        switches: the switches evaluated (column order of the matrix).
        site_sets: the candidate site subsets evaluated (row order).
        availability: ``(len(site_sets), len(switches))`` array of exact
            per-switch control-path availabilities.
    """

    switches: tuple[str, ...]
    site_sets: tuple[tuple[str, ...], ...]
    availability: np.ndarray

    def fleet(self) -> np.ndarray:
        """Fleet-wide mean A_CP per site set — the placement objective."""
        return self.availability.mean(axis=-1)

    def per_switch_map(self, row: int) -> dict[str, float]:
        return {
            switch: float(value)
            for switch, value in zip(
                self.switches, self.availability[row]
            )
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "switches": list(self.switches),
            "site_sets": [list(sites) for sites in self.site_sets],
            "availability": [
                [float(v) for v in row] for row in self.availability
            ],
            "fleet": [float(v) for v in self.fleet()],
        }


@dataclass(frozen=True, eq=False)
class PairSweepPlan:
    """One graph's control paths compiled for arbitrary site subsets.

    Attributes:
        graph: the compiled graph.
        switches: switches covered, in evaluation (column) order.
        candidates: the candidate site pool the indicators refer to.
        columns: factor-matrix column names — every graph element followed
            by one ``ctrl@`` indicator per candidate.
        unique_terms: disjoint products after cross-switch deduplication.
        total_terms: term count before deduplication (sum over switches).
    """

    graph: NetworkGraph
    switches: tuple[str, ...]
    candidates: tuple[str, ...]
    columns: tuple[str, ...]
    unique_terms: int
    total_terms: int
    _baseline: np.ndarray
    _ctrl_column: Mapping[str, int]
    _element_column: Mapping[str, int]
    _up_indices: np.ndarray
    _up_offsets: np.ndarray
    _down_indices: np.ndarray
    _down_offsets: np.ndarray
    _switch_term_ids: np.ndarray
    _switch_offsets: np.ndarray

    def _factor_rows(
        self,
        site_sets: tuple[tuple[str, ...], ...],
        availability: Mapping[str, float] | None,
    ) -> np.ndarray:
        baseline = self._baseline
        if availability is not None:
            baseline = baseline.copy()
            for name, value in availability.items():
                column = self._element_column.get(name)
                if column is None:
                    raise NetworkError(
                        f"graph {self.graph.name!r} has no element {name!r} "
                        "to override"
                    )
                check_probability(value, name)
                baseline[column] = value
        rows = np.tile(baseline, (len(site_sets), 1))
        for row, sites in enumerate(site_sets):
            if not sites:
                raise NetworkError("site sets must be non-empty")
            if len(set(sites)) != len(sites):
                raise NetworkError(
                    f"site set {sites!r} has duplicate sites"
                )
            for site in sites:
                column = self._ctrl_column.get(site)
                if column is None:
                    raise NetworkError(
                        f"site {site!r} is not in the compiled candidate "
                        f"pool {self.candidates!r}"
                    )
                rows[row, column] = 1.0
        return rows

    def evaluate(
        self,
        site_sets: Iterable[Iterable[str]],
        availability: Mapping[str, float] | None = None,
    ) -> PairSweepResult:
        """Exact per-switch availability under every given site subset.

        ``availability`` optionally overrides per-element availabilities
        (graph defaults otherwise) — the whole sweep re-evaluates under the
        new vector with no recompilation.  Rows come back in ``site_sets``
        order, columns in ``switches`` order.
        """
        resolved = tuple(tuple(sites) for sites in site_sets)
        if not resolved:
            raise NetworkError("need at least one site set to evaluate")
        factors = self._factor_rows(resolved, availability)
        up = gather_segment_products(
            factors, self._up_indices, self._up_offsets
        )
        down = gather_segment_products(
            1.0 - factors, self._down_indices, self._down_offsets
        )
        per_switch = segment_sums(
            np.take(up * down, self._switch_term_ids, axis=-1),
            self._switch_offsets,
        )
        telemetry.emit(
            "network.batch.evaluate",
            graph=self.graph.name,
            site_sets=len(resolved),
            switches=len(self.switches),
            pairs=len(resolved) * len(self.switches),
        )
        return PairSweepResult(
            switches=self.switches,
            site_sets=resolved,
            availability=np.clip(per_switch, 0.0, 1.0),
        )


def compile_pair_sweep(
    graph: NetworkGraph,
    switches: Iterable[str] | None = None,
    candidates: Iterable[str] | None = None,
) -> PairSweepPlan:
    """Compile one graph's (switch, site-set) sweep into array form.

    Enumerates each switch's candidate-pool path sets once, disjoints them
    once (:func:`repro.core.sdp.sdp_terms`), deduplicates identical terms
    across switches, and flattens the survivors into the index/offset
    arrays :meth:`PairSweepPlan.evaluate` reduces over.  ``switches``
    defaults to every switch in the graph, ``candidates`` to every site
    node.
    """
    chosen_switches, pool = _check_pool(graph, switches, candidates)
    element_names = tuple(graph.availability_map())
    columns = (
        *element_names,
        *(CTRL_PREFIX + site for site in pool),
    )
    column_of = {name: i for i, name in enumerate(columns)}
    baseline = np.zeros(len(columns))
    availability_map = graph.availability_map()
    for name in element_names:
        baseline[column_of[name]] = availability_map[name]

    unique_ids: dict[tuple[frozenset[str], frozenset[str]], int] = {}
    unique_terms: list[tuple[frozenset[str], frozenset[str]]] = []
    switch_term_ids: list[int] = []
    switch_offsets = [0]
    total_terms = 0
    for switch in chosen_switches:
        paths = _indicator_path_sets_cached(graph, switch, pool)
        for term in sdp_terms(paths):
            key = (term.up, term.down)
            uid = unique_ids.get(key)
            if uid is None:
                uid = len(unique_terms)
                unique_ids[key] = uid
                unique_terms.append(key)
            switch_term_ids.append(uid)
            total_terms += 1
        switch_offsets.append(len(switch_term_ids))

    up_indices: list[int] = []
    up_offsets = [0]
    down_indices: list[int] = []
    down_offsets = [0]
    for up, down in unique_terms:
        up_indices.extend(sorted(column_of[name] for name in up))
        up_offsets.append(len(up_indices))
        down_indices.extend(sorted(column_of[name] for name in down))
        down_offsets.append(len(down_indices))

    plan = PairSweepPlan(
        graph=graph,
        switches=chosen_switches,
        candidates=pool,
        columns=columns,
        unique_terms=len(unique_terms),
        total_terms=total_terms,
        _baseline=baseline,
        _ctrl_column={
            site: column_of[CTRL_PREFIX + site] for site in pool
        },
        _element_column={
            name: column_of[name] for name in element_names
        },
        _up_indices=np.asarray(up_indices, dtype=np.intp),
        _up_offsets=np.asarray(up_offsets, dtype=np.intp),
        _down_indices=np.asarray(down_indices, dtype=np.intp),
        _down_offsets=np.asarray(down_offsets, dtype=np.intp),
        _switch_term_ids=np.asarray(switch_term_ids, dtype=np.intp),
        _switch_offsets=np.asarray(switch_offsets, dtype=np.intp),
    )
    telemetry.emit(
        "network.batch.compile",
        graph=graph.name,
        graph_hash=graph.graph_hash(),
        switches=len(chosen_switches),
        candidates=len(pool),
        unique_terms=plan.unique_terms,
        total_terms=plan.total_terms,
    )
    return plan


def sweep_site_sets(
    graph: NetworkGraph,
    site_sets: Iterable[Iterable[str]],
    switches: Iterable[str] | None = None,
    candidates: Iterable[str] | None = None,
    availability: Mapping[str, float] | None = None,
) -> PairSweepResult:
    """Compile-and-evaluate convenience for one-shot sweeps.

    ``candidates`` defaults to the union of the given site sets, so ad-hoc
    comparisons ("these three deployments, side by side") need no explicit
    pool.  For repeated evaluation keep the :class:`PairSweepPlan` from
    :func:`compile_pair_sweep` and call :meth:`~PairSweepPlan.evaluate`.
    """
    resolved = tuple(tuple(sites) for sites in site_sets)
    if candidates is None:
        pool: dict[str, None] = {}
        for sites in resolved:
            for site in sites:
                pool.setdefault(site)
        candidates = tuple(pool)
    plan = compile_pair_sweep(graph, switches=switches, candidates=candidates)
    return plan.evaluate(resolved, availability=availability)
