"""Whole-controller specification and the derived Tables II / III.

:class:`ControllerSpec` aggregates the cluster roles (replicated 2N+1 across
controller nodes) and the optional per-host role (vRouter).  The paper's
encapsulation tables are derived views:

* :meth:`ControllerSpec.restart_mode_table` — Table II,
* :meth:`ControllerSpec.quorum_table` — Table III,

so "populating the tables for another controller" is simply constructing a
different :class:`ControllerSpec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.controller.process import ProcessKind
from repro.controller.role import RoleKind, RoleSpec
from repro.errors import SpecError


class Plane(enum.Enum):
    """Which service plane a model evaluates."""

    CP = "cp"  #: the SDN control plane
    DP = "dp"  #: the per-host vRouter data plane


@dataclass(frozen=True)
class ControllerSpec:
    """A distributed SDN controller implementation.

    Attributes:
        name: implementation name (e.g. ``"OpenContrail 3.x"``).
        roles: all roles.  Cluster roles are replicated ``cluster_size``
            times; at most one HOST-kind role is allowed (the forwarding
            element on each compute host).
        cluster_size: number of controller nodes, the paper's ``2N+1``
            (default 3, i.e. ``N = 1``).
    """

    name: str
    roles: tuple[RoleSpec, ...]
    cluster_size: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("controller name must be non-empty")
        object.__setattr__(self, "roles", tuple(self.roles))
        if not self.roles:
            raise SpecError("a controller needs at least one role")
        names = [role.name for role in self.roles]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate role names in controller {self.name!r}")
        if self.cluster_size < 1:
            raise SpecError(f"cluster_size must be >= 1, got {self.cluster_size}")
        host_roles = [r for r in self.roles if r.kind is RoleKind.HOST]
        if len(host_roles) > 1:
            raise SpecError("at most one per-host role is supported")
        self._validate_quorums()

    def _validate_quorums(self) -> None:
        for role in self.cluster_roles:
            for process in role.processes:
                for plane, quorum in (
                    ("cp", process.cp_quorum),
                    ("dp", process.dp_quorum),
                ):
                    if quorum > self.cluster_size:
                        raise SpecError(
                            f"process {process.name!r} in role {role.name!r} "
                            f"requires {quorum} of {self.cluster_size} "
                            f"instances for the {plane}"
                        )
        host = self.host_role
        if host is not None:
            for process in host.processes:
                if process.cp_quorum > 1 or process.dp_quorum > 1:
                    raise SpecError(
                        f"per-host process {process.name!r} has a single "
                        "instance; quorum requirements must be 0 or 1"
                    )

    # -- role access ----------------------------------------------------------

    @property
    def cluster_roles(self) -> tuple[RoleSpec, ...]:
        """Roles replicated across the controller cluster."""
        return tuple(r for r in self.roles if r.kind is RoleKind.CLUSTER)

    @property
    def host_role(self) -> RoleSpec | None:
        """The per-compute-host role (vRouter), if defined."""
        for role in self.roles:
            if role.kind is RoleKind.HOST:
                return role
        return None

    def role(self, name: str) -> RoleSpec:
        """Look up a role by name."""
        for candidate in self.roles:
            if candidate.name == name:
                return candidate
        raise SpecError(f"controller {self.name!r} has no role {name!r}")

    @property
    def supervisors_per_cluster(self) -> int:
        """Total supervisor processes across the cluster roles (paper: 12)."""
        return self.cluster_size * sum(
            1 for role in self.cluster_roles if role.supervisor is not None
        )

    # -- derived tables -------------------------------------------------------

    def restart_mode_table(self) -> dict[str, tuple[int, int]]:
        """Table II: ``{role: (auto_count, manual_count)}`` for cluster roles.

        Counts regular processes only — the paper's Table II excludes the
        common *supervisor* and *nodemgr* processes, whose effect is modeled
        through the restart scenarios instead.
        """
        return {
            role.name: role.restart_counts() for role in self.cluster_roles
        }

    def quorum_table(self, plane: Plane) -> dict[str, tuple[int, int]]:
        """Table III for one plane: ``{role: (M, N)}`` for cluster roles.

        ``M`` counts "2 of n" quorum units, ``N`` counts "1 of n" units;
        DP co-location groups count as a single unit (the footnoted
        ``{control+dns+named}`` block).
        """
        return {
            role.name: role.quorum_counts(plane.value)
            for role in self.cluster_roles
        }

    def quorum_sums(self, plane: Plane) -> tuple[int, int]:
        """The Table III "Sums" row: ``(sum M_R, sum N_R)``."""
        table = self.quorum_table(plane)
        return (
            sum(m for m, _ in table.values()),
            sum(n for _, n in table.values()),
        )

    def process_rows(self) -> list[tuple[str, str, str, str]]:
        """Table I rows: ``(role, process, 'm of n' CP, 'm of n' DP)``.

        Includes per-host role processes, whose instance count is 1.
        """
        rows: list[tuple[str, str, str, str]] = []
        for role in self.roles:
            n = self.cluster_size if role.kind is RoleKind.CLUSTER else 1
            for process in role.processes:
                if process.kind is not ProcessKind.REGULAR:
                    continue
                rows.append(
                    (
                        role.name,
                        process.name,
                        f"{process.cp_quorum} of {n}",
                        f"{process.dp_quorum} of {n}",
                    )
                )
        return rows
