"""Tests for minimal cut sets and ranking (repro.core.cutsets)."""

import pytest

from repro.core.blocks import Basic, KOfN
from repro.core.cutsets import (
    exact_unavailability,
    minimal_cut_sets,
    minimal_path_sets,
    rank_cut_sets,
    union_bound,
)
from repro.core.structure import StructureFunction
from repro.errors import ModelError


def sf(block):
    return StructureFunction.from_block(block)


class TestMinimalCutSets:
    def test_series_cuts_are_singletons(self):
        cuts = minimal_cut_sets(sf(Basic("a", 0.9) & Basic("b", 0.9)))
        assert set(cuts) == {frozenset({"a"}), frozenset({"b"})}

    def test_parallel_cut_is_the_pair(self):
        cuts = minimal_cut_sets(sf(Basic("a", 0.9) | Basic("b", 0.9)))
        assert cuts == [frozenset({"a", "b"})]

    def test_two_of_three_cuts_are_pairs(self):
        block = KOfN(2, (Basic("a", 0.9), Basic("b", 0.9), Basic("c", 0.9)))
        cuts = set(minimal_cut_sets(sf(block)))
        assert cuts == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }

    def test_max_order_truncates(self):
        block = KOfN(1, tuple(Basic(f"x{i}", 0.9) for i in range(3)))
        assert minimal_cut_sets(sf(block), max_order=2) == []
        assert len(minimal_cut_sets(sf(block), max_order=3)) == 1

    def test_non_minimal_supersets_excluded(self):
        # Series a & (b | c): cuts {a}, {b, c}; {a, b} is not minimal.
        block = Basic("a", 0.9) & (Basic("b", 0.9) | Basic("c", 0.9))
        cuts = set(minimal_cut_sets(sf(block)))
        assert cuts == {frozenset({"a"}), frozenset({"b", "c"})}

    def test_system_down_rejected(self):
        dead = StructureFunction(("a",), lambda s: False)
        with pytest.raises(ModelError):
            minimal_cut_sets(dead)


class TestMinimalPathSets:
    def test_series_path_is_everything(self):
        paths = minimal_path_sets(sf(Basic("a", 0.9) & Basic("b", 0.9)))
        assert paths == [frozenset({"a", "b"})]

    def test_parallel_paths_are_singletons(self):
        paths = set(minimal_path_sets(sf(Basic("a", 0.9) | Basic("b", 0.9))))
        assert paths == {frozenset({"a"}), frozenset({"b"})}


class TestRanking:
    def test_orders_by_probability(self):
        cuts = [frozenset({"rare"}), frozenset({"common"})]
        ranked = rank_cut_sets(
            cuts, {"rare": 1e-6, "common": 1e-3}
        )
        assert ranked[0].components == frozenset({"common"})
        assert ranked[0].probability == pytest.approx(1e-3)

    def test_pair_probability_multiplies(self):
        ranked = rank_cut_sets(
            [frozenset({"a", "b"})], {"a": 1e-2, "b": 1e-3}
        )
        assert ranked[0].probability == pytest.approx(1e-5)
        assert ranked[0].order == 2

    def test_missing_unavailability_rejected(self):
        with pytest.raises(ModelError):
            rank_cut_sets([frozenset({"ghost"})], {})


class TestBounds:
    def test_union_bound_upper_bounds_exact(self):
        block = KOfN(2, (Basic("a", 0.9), Basic("b", 0.9), Basic("c", 0.9)))
        cuts = minimal_cut_sets(sf(block))
        unavailability = {"a": 0.1, "b": 0.1, "c": 0.1}
        ranked = rank_cut_sets(cuts, unavailability)
        exact = exact_unavailability(cuts, unavailability)
        assert union_bound(ranked) >= exact

    def test_exact_matches_enumeration(self):
        block = Basic("a", 0.95) & (Basic("b", 0.9) | Basic("c", 0.85))
        cuts = minimal_cut_sets(sf(block))
        unavailability = {"a": 0.05, "b": 0.1, "c": 0.15}
        exact = exact_unavailability(cuts, unavailability)
        direct = 1 - sf(block).availability(
            {k: 1 - v for k, v in unavailability.items()}
        )
        assert exact == pytest.approx(direct)

    def test_union_bound_capped_at_one(self):
        ranked = rank_cut_sets(
            [frozenset({"a"}), frozenset({"b"})], {"a": 0.9, "b": 0.9}
        )
        assert union_bound(ranked) == 1.0
