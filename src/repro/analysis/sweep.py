"""Generic one-dimensional parameter sweeps.

The paper's figures are sweeps of a single parameter (role availability in
Fig. 3, process availability in Figs. 4-5) against one or more model
outputs.  :func:`sweep` captures that pattern: a grid, a family of labelled
evaluators, a list of rows back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ParameterError


@dataclass(frozen=True)
class SweepResult:
    """A labelled sweep: grid values plus one output series per label."""

    parameter: str
    grid: tuple[float, ...]
    series: dict[str, tuple[float, ...]]

    def rows(self) -> list[tuple[float, ...]]:
        """Rows of ``(grid_value, series_1, series_2, ...)`` in label order."""
        labels = list(self.series)
        return [
            (x, *(self.series[label][i] for label in labels))
            for i, x in enumerate(self.grid)
        ]

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self.series)


def grid(start: float, stop: float, points: int) -> tuple[float, ...]:
    """An inclusive linear grid with ``points`` samples.

    The grid may ascend or descend (``stop < start`` sweeps downward, e.g.
    degrading availability from 1.0); only a degenerate zero-length span is
    rejected.
    """
    if points < 2:
        raise ParameterError(f"need at least 2 grid points, got {points}")
    if stop == start:
        raise ParameterError(f"stop ({stop}) must differ from start ({start})")
    return tuple(float(x) for x in np.linspace(start, stop, points))


def sweep(
    parameter: str,
    values: Sequence[float],
    evaluators: Mapping[str, Callable[[float], float]],
) -> SweepResult:
    """Evaluate each labelled function over the grid.

    Args:
        parameter: name of the swept parameter (for reporting).
        values: grid of parameter values.
        evaluators: label -> function of the parameter value.
    """
    if not evaluators:
        raise ParameterError("need at least one evaluator")
    grid_values = tuple(float(v) for v in values)
    series = {
        label: tuple(fn(v) for v in grid_values)
        for label, fn in evaluators.items()
    }
    return SweepResult(parameter=parameter, grid=grid_values, series=series)
