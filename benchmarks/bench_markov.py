"""A4 — validation: CTMC steady state vs Eq. (1), and the shared-repair
penalty the combinatorial model cannot express.

The independent-repair k-of-n CTMC must reproduce Eq. (1) exactly; the
single-repair-crew variant quantifies how optimistic the paper's
independence assumption is when repairs queue (relevant for the manually
restarted Database processes, which share operations staff in practice).
"""

import pytest

from repro.markov.kofn_markov import (
    kofn_availability_markov,
    kofn_availability_rbd,
    shared_repair_penalty,
)
from repro.reporting.tables import format_table

#: The paper's Database block: F = 5000 h, manual restart R_S = 1 h.
LAM, MU = 1.0 / 5000.0, 1.0


def markov_table():
    rows = []
    for m, n in ((1, 3), (2, 3), (3, 5), (2, 2)):
        markov = kofn_availability_markov(m, n, LAM, MU)
        rbd = kofn_availability_rbd(m, n, LAM, MU)
        penalty = shared_repair_penalty(m, n, LAM, MU)
        rows.append((m, n, markov, rbd, penalty))
    return rows


def test_markov_validation(benchmark):
    rows = benchmark(markov_table)
    print(
        "\n"
        + format_table(
            ("m", "n", "CTMC", "Eq. (1)", "Shared-repair penalty"),
            [
                (m, n, f"{mk:.10f}", f"{rb:.10f}", f"{p:.3e}")
                for m, n, mk, rb, p in rows
            ],
            title="Ablation A4: CTMC vs Eq. (1) at Database parameters",
        )
    )
    for m, n, markov, rbd, penalty in rows:
        assert markov == pytest.approx(rbd, rel=1e-9), (m, n)
        assert penalty >= -1e-12
    # The 2-of-3 Database quorum unavailability at paper parameters is
    # ~1.2e-7 — the number behind the "dominant failure mode" analysis.
    two_of_three = next(r for r in rows if r[:2] == (2, 3))
    assert 1 - two_of_three[2] == pytest.approx(1.2e-7, rel=0.05)
