"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The serving layer speaks just enough HTTP/1.1 for availability queries and
job control — request-line + headers + ``Content-Length`` bodies, JSON
payloads, keep-alive by default — with hard limits on every dimension an
untrusted client controls (line length, header count, body size).  Nothing
here depends on third-party HTTP stacks; the parser reads whatever
:func:`asyncio.start_server` hands it.

Two response shapes exist: :class:`Response` (a complete body framed with
``Content-Length``) and :class:`StreamingResponse` (a
``Transfer-Encoding: chunked`` stream fed by an async generator — the
carrier for the server-sent-events endpoints, where the body is unbounded
and produced live).  :func:`encode_chunk` / :data:`LAST_CHUNK` implement
the chunked framing itself.

Violations raise :class:`ProtocolError`, a :class:`~repro.errors.ServeError`
carrying the 4xx status the connection handler answers with before closing
— malformed traffic never reaches the query or job layers.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServeError

__all__ = [
    "MAX_REQUEST_LINE_BYTES",
    "MAX_HEADER_COUNT",
    "MAX_BODY_BYTES",
    "LAST_CHUNK",
    "ProtocolError",
    "Request",
    "Response",
    "StreamingResponse",
    "encode_chunk",
    "read_request",
]

#: Longest accepted request or header line (bytes, including CRLF).
MAX_REQUEST_LINE_BYTES = 8192

#: Most header lines accepted on one request.
MAX_HEADER_COUNT = 64

#: Default request-body cap (1 MiB) — campaign specs are a few KiB.
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for the statuses this service emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ServeError):
    """A malformed or over-limit HTTP request (4xx, connection closed)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message, status=status)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    _json: Any = field(default=None, repr=False)
    _json_parsed: bool = field(default=False, repr=False)

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default unless the client asked to close."""
        return self.headers.get("connection", "").lower() != "close"

    @property
    def tenant(self) -> str:
        """The requesting tenant (``X-Tenant`` header, anonymous default)."""
        return self.headers.get("x-tenant", "anonymous") or "anonymous"

    def json(self) -> Any:
        """The body parsed as JSON; :class:`ProtocolError` when it isn't."""
        if not self._json_parsed:
            if not self.body:
                raise ProtocolError("request body must be JSON (got empty)")
            try:
                self._json = json.loads(self.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ProtocolError(
                    f"request body is not valid JSON: {error}"
                ) from None
            self._json_parsed = True
        return self._json

    def json_object(self) -> dict[str, Any]:
        """The body as a JSON *object*; anything else is a 400."""
        payload = self.json()
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


@dataclass(frozen=True)
class Response:
    """One HTTP response, encodable for a keep-alive or closing exchange."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = ()

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return cls(status=status, body=text.encode("utf-8"))

    @classmethod
    def error(cls, status: int, message: str, **fields: Any) -> "Response":
        return cls.json({"error": message, **fields}, status=status)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=body.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in self.headers
        )
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + self.body


def encode_chunk(data: bytes) -> bytes:
    """Frame ``data`` as one HTTP/1.1 chunk (hex length, CRLF, payload)."""
    return f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n"


#: The zero-length chunk terminating a chunked response body.
LAST_CHUNK = b"0\r\n\r\n"


@dataclass
class StreamingResponse:
    """A ``Transfer-Encoding: chunked`` response fed by an async generator.

    ``chunks`` yields raw payload ``bytes`` (e.g. encoded SSE frames); the
    connection handler frames each yield as one HTTP chunk and closes the
    connection after the terminating chunk — streaming exchanges never
    keep-alive (the stream *is* the rest of the connection).  The handler
    closes the generator (``aclose``) on client disconnect, so ``chunks``
    should release its resources in a ``finally``.
    """

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "text/event-stream"
    headers: tuple[tuple[str, str], ...] = ()

    def encode_head(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in self.headers
        )
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Cache-Control: no-store\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("latin-1")


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """One CRLF/LF-terminated line within the line-length limit."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return b""  # clean EOF between requests
        raise ProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(
            f"request line exceeds {MAX_REQUEST_LINE_BYTES} bytes",
            status=413,
        ) from None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_REQUEST_LINE_BYTES} bytes",
            status=413,
        )
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Request | None:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream before any request byte (the
    keep-alive peer hung up) and raises :class:`ProtocolError` on anything
    malformed or over-limit.
    """
    raw = await _read_line(reader)
    if not raw:
        return None
    parts = raw.decode("latin-1").split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {raw[:80]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    method = method.upper()

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        line = await _read_line(reader)
        if not line:
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError(
                f"more than {MAX_HEADER_COUNT} header lines", status=413
            )
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                f"invalid Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"invalid Content-Length {length}")
        if length > max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                status=413,
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError("connection closed mid-body") from None
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked transfer encoding is not supported")

    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        target=target,
        path=path,
        query=query,
        headers=headers,
        body=body,
    )
