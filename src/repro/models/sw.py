"""SW-centric availability models — section VI, Eqs. (9)-(15).

The controller is evaluated at the process level: each role contributes a
product of per-process m-of-x quorum blocks (Eq. 13), where the number of
operational node-role platforms is conditioned on the infrastructure
(Eqs. 9/15) and — when the supervisor is required (scenario 2) — on the
supervisor instances (Eqs. 12, 14).

Two evaluation routes, cross-checked in the tests:

* :func:`plane_availability` — closed-form conditioning for the reference
  topologies (Small, Medium, Large), following the paper's derivations with
  per-process availabilities (``A`` for auto-restarted processes, ``A_S``
  for manual — see the DESIGN.md fidelity note: the paper's *quoted
  numbers* require this, although its printed formulas abbreviate
  ``alpha = A``).
* :func:`plane_availability_exact` — the generic enumeration engine over an
  explicit :class:`DeploymentTopology`, valid for arbitrary layouts.

Summation ranges are exact (all platform counts 0..n), which subsumes the
paper's printed two-term expansions; omitted terms are zero for the CP
(the Database quorum forces them) and below reporting precision for the DP.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.controller.role import RoleSpec
from repro.controller.spec import ControllerSpec, Plane
from repro.core.kofn import a_m_of_n, binomial_pmf
from repro.errors import ModelError
from repro.models.engine import (
    RoleRequirement,
    UnitRequirement,
    evaluate_topology,
)
from repro.params.hardware import HardwareParams
from repro.params.software import RestartScenario, SoftwareParams
from repro.topology.deployment import DeploymentTopology


def _role_units(
    role: RoleSpec, plane: Plane, software: SoftwareParams
) -> tuple[UnitRequirement, ...]:
    """The role's quorum units with resolved per-instance availabilities."""
    amap = software.availability_map()
    return tuple(
        UnitRequirement(unit.label, unit.quorum, unit.alpha(amap))
        for unit in role.quorum_units(plane.value)
    )


def _role_platform_extra(
    role: RoleSpec, software: SoftwareParams, scenario: RestartScenario
) -> float:
    """Per-platform survival factor beyond infrastructure.

    In scenario 2 ("supervisor required") a node-role with a dead supervisor
    is entirely down, so each platform additionally needs its supervisor up
    (probability ``A_S``).  Roles without a supervisor, and scenario 1, have
    no extra factor.
    """
    if scenario is RestartScenario.REQUIRED and role.supervisor is not None:
        return software.a_unsupervised
    return 1.0


def _role_term(
    units: Sequence[UnitRequirement], candidates: int, rho: float
) -> float:
    """Eq. (12)-(14) for one role.

    ``candidates`` platforms each survive independently with probability
    ``rho``; given ``g`` survivors the role's availability is the product of
    its units' ``A_{m/g}(alpha)`` (Eq. 13).  ``rho = 1`` collapses to the
    unconditioned Eq. (10) product.
    """
    if not units:
        return 1.0
    if rho == 1.0:
        value = 1.0
        for unit in units:
            value *= a_m_of_n(unit.quorum, candidates, unit.alpha)
        return value
    total = 0.0
    for g in range(candidates + 1):
        weight = binomial_pmf(g, candidates, rho)
        if weight == 0.0:
            continue
        value = 1.0
        for unit in units:
            value *= a_m_of_n(unit.quorum, g, unit.alpha)
            if value == 0.0:
                break
        total += weight * value
    return total


def _roles_product(
    spec: ControllerSpec,
    plane: Plane,
    software: SoftwareParams,
    scenario: RestartScenario,
    candidates: int,
    rho_base: float,
) -> float:
    """Product over cluster roles of their conditional availabilities."""
    value = 1.0
    for role in spec.cluster_roles:
        units = _role_units(role, plane, software)
        if not units:
            continue
        rho = rho_base * _role_platform_extra(role, software, scenario)
        value *= _role_term(units, candidates, rho)
        if value == 0.0:
            return 0.0
    return value


# -- closed forms for the reference topologies ---------------------------------


def _plane_required(
    spec: ControllerSpec, plane: Plane
) -> bool:
    """Whether any cluster role has a quorum unit for the plane.

    A plane that requires no processes does not depend on the controller
    infrastructure at all; its availability is 1 regardless of topology
    (degenerate case outside the paper's tables, handled for generality).
    """
    return any(
        role.quorum_units(plane.value) for role in spec.cluster_roles
    )


def _small(
    spec: ControllerSpec,
    plane: Plane,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """Options 1S/2S — Eqs. (9)-(14): condition on {VM+host} blocks."""
    if not _plane_required(spec, plane):
        return 1.0
    n = spec.cluster_size
    block = hardware.vm_host_block
    total = 0.0
    for x in range(n + 1):
        weight = binomial_pmf(x, n, block)
        if weight > 0.0:
            total += weight * _roles_product(
                spec, plane, software, scenario, x, 1.0
            )
    return total * hardware.a_rack


def _medium(
    spec: ControllerSpec,
    plane: Plane,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """SW-centric Medium (not printed in the paper): racks, then hosts.

    Role VMs are private per node-role, so the per-platform survival
    probability is ``A_V`` (times ``A_S`` in scenario 2).
    """
    if not _plane_required(spec, plane):
        return 1.0
    n = spec.cluster_size
    if n < 2:
        raise ModelError("the Medium topology needs at least 2 nodes")
    a_h, a_r = hardware.a_host, hardware.a_rack

    def hosts_term(k: int) -> float:
        return sum(
            binomial_pmf(x, k, a_h)
            * _roles_product(spec, plane, software, scenario, x, hardware.a_vm)
            for x in range(k + 1)
        )

    return (
        a_r * a_r * hosts_term(n)
        + a_r * (1.0 - a_r) * hosts_term(n - 1)
        + (1.0 - a_r) * a_r * hosts_term(1)
    )


def _large(
    spec: ControllerSpec,
    plane: Plane,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """Options 1L/2L — Eq. (15) with (12)-(14): condition on racks.

    Each node-role has a private {VM+host} chain, so the per-platform
    survival probability is ``A_V A_H`` (times ``A_S`` in scenario 2 —
    the paper's ``rho = A_S A_V A_H``).
    """
    n = spec.cluster_size
    rho_base = hardware.vm_host_block
    total = 0.0
    for r in range(n + 1):
        weight = binomial_pmf(r, n, hardware.a_rack)
        if weight > 0.0:
            total += weight * _roles_product(
                spec, plane, software, scenario, r, rho_base
            )
    return total


_DISPATCH: dict[str, Callable[..., float]] = {
    "small": _small,
    "medium": _medium,
    "large": _large,
}


def plane_availability(
    spec: ControllerSpec,
    plane: Plane,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """Closed-form SW-centric availability of one plane's shared portion.

    For ``Plane.CP`` this is the paper's ``A_CP``; for ``Plane.DP`` it is
    the *shared* DP contribution ``A_SDP`` (combine with the local vRouter
    term via :func:`repro.models.dataplane.dp_availability`).
    """
    try:
        model = _DISPATCH[topology_name.lower()]
    except KeyError:
        raise ModelError(
            f"no SW-centric closed form for topology {topology_name!r}; "
            f"expected one of {sorted(_DISPATCH)}"
        ) from None
    return model(spec, plane, hardware, software, scenario)


def cp_availability(
    spec: ControllerSpec,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """The paper's ``A_CP`` for a reference topology and restart scenario."""
    return plane_availability(
        spec, Plane.CP, topology_name, hardware, software, scenario
    )


def shared_dp_availability(
    spec: ControllerSpec,
    topology_name: str,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """The paper's ``A_SDP`` — controller-side contribution to every host DP."""
    return plane_availability(
        spec, Plane.DP, topology_name, hardware, software, scenario
    )


# -- exact engine route ----------------------------------------------------------


def plane_requirements(
    spec: ControllerSpec,
    plane: Plane,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> tuple[RoleRequirement, ...]:
    """Engine requirements for one plane (cluster roles with any quorum units)."""
    requirements = []
    for role in spec.cluster_roles:
        units = _role_units(role, plane, software)
        if not units:
            continue
        requirements.append(
            RoleRequirement(
                role.name,
                units,
                _role_platform_extra(role, software, scenario),
            )
        )
    return tuple(requirements)


def plane_availability_exact(
    spec: ControllerSpec,
    plane: Plane,
    topology: DeploymentTopology,
    hardware: HardwareParams,
    software: SoftwareParams,
    scenario: RestartScenario,
) -> float:
    """SW-centric plane availability on an explicit topology (exact engine)."""
    requirements = plane_requirements(spec, plane, software, scenario)
    availability = {
        "rack": hardware.a_rack,
        "host": hardware.a_host,
        "vm": hardware.a_vm,
    }
    return evaluate_topology(topology, requirements, availability)
