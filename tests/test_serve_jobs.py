"""Campaign job queue: determinism vs the CLI path, admission, telemetry."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import telemetry
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
)
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.protocol import Request


def run(coroutine):
    return asyncio.run(coroutine)


def make_request(method, path, payload=None, tenant=None):
    headers = {}
    if tenant:
        headers["x-tenant"] = tenant
    body = json.dumps(payload).encode() if payload is not None else b""
    return Request(
        method=method,
        target=path,
        path=path,
        query={},
        headers=headers,
        body=body,
    )


async def submit_and_wait(app, kind, spec, tenant="tester", timeout=120.0):
    """Submit one job through the full request path and poll to completion."""
    response = await app.handle(
        make_request(
            "POST", "/v1/jobs", {"kind": kind, "spec": spec}, tenant=tenant
        )
    )
    assert response.status == 202, response.body
    job_id = json.loads(response.body)["id"]

    async def poll():
        while True:
            status = await app.handle(
                make_request("GET", f"/v1/jobs/{job_id}")
            )
            record = json.loads(status.body)
            if record["state"] in ("done", "failed"):
                return record
            await asyncio.sleep(0.02)

    return await asyncio.wait_for(poll(), timeout=timeout)


CAMPAIGN_SPEC = {
    "option": "1S",
    "horizon_hours": 300.0,
    "replications": 2,
    "seed": 7,
}

NETWORK_SPEC = {
    "graph": "line",
    "horizon_hours": 200.0,
    "replications": 2,
    "seed": 11,
    "node_mtbf_hours": 100.0,
    "link_mtbf_hours": 80.0,
}


class TestJobDeterminism:
    @pytest.mark.slow
    def test_campaign_job_equals_cli_path(self):
        """A server-run campaign is ``==`` to the CLI's crossval payload."""
        from repro.faults.campaign import CampaignSpec
        from repro.faults.crossval import evaluate_campaign
        from repro.reporting.faults import crossval_payload

        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                return await submit_and_wait(
                    app, "campaign", CAMPAIGN_SPEC
                )
            finally:
                await app.stop()

        record = run(scenario())
        assert record["state"] == "done", record.get("error")

        # The exact functions `repro-avail faults --json` goes through.
        spec = CampaignSpec.from_dict(CAMPAIGN_SPEC)
        local = crossval_payload(evaluate_campaign(spec, workers=1))
        assert record["result"] == json.loads(json.dumps(local))
        assert record["spec_hash"] == spec.params_hash()

    @pytest.mark.slow
    def test_network_job_equals_library_run(self):
        from repro.network.campaign import (
            NetworkCampaignSpec,
            run_network_campaign,
        )
        from repro.topology.network_reference import reference_network

        async def scenario():
            app = ServeApp(ServeConfig())
            await app.start()
            try:
                return await submit_and_wait(
                    app, "network_campaign", NETWORK_SPEC
                )
            finally:
                await app.stop()

        record = run(scenario())
        assert record["state"] == "done", record.get("error")

        local_spec = NetworkCampaignSpec(
            graph=reference_network("line"),
            horizon_hours=NETWORK_SPEC["horizon_hours"],
            replications=NETWORK_SPEC["replications"],
            seed=NETWORK_SPEC["seed"],
            node_mtbf_hours=NETWORK_SPEC["node_mtbf_hours"],
            link_mtbf_hours=NETWORK_SPEC["link_mtbf_hours"],
        )
        local = run_network_campaign(local_spec, workers=1)
        result = record["result"]
        assert result["per_switch"] == local.per_switch()
        assert result["fleet_availability"] == local.fleet_availability()
        assert (
            result["all_switches_availability"]
            == local.all_switches_availability()
        )
        assert result["seeds"] == list(local.seeds)
        assert record["spec_hash"] == local_spec.params_hash()

    def test_sharding_is_stable(self):
        async def scenario():
            app = ServeApp(ServeConfig(shards=4))
            # Workers never started: jobs stay queued, shard is inspectable.
            first = await app.handle(
                make_request(
                    "POST",
                    "/v1/jobs",
                    {"kind": "campaign", "spec": CAMPAIGN_SPEC},
                )
            )
            second = await app.handle(
                make_request(
                    "POST",
                    "/v1/jobs",
                    {"kind": "campaign", "spec": CAMPAIGN_SPEC},
                )
            )
            return json.loads(first.body), json.loads(second.body)

        first, second = run(scenario())
        assert first["spec_hash"] == second["spec_hash"]
        assert first["shard"] == second["shard"]
        assert first["shard"] == int(first["spec_hash"], 16) % 4
        assert first["id"] != second["id"]


class TestAdmission:
    def test_controller_sheds_at_queue_depth(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(AdmissionError):
            controller.admit("c")
        assert controller.shed_queue_full == 1
        controller.release("a")
        controller.admit("c")  # slot freed

    def test_controller_sheds_per_tenant(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=10, max_tenant_inflight=1)
        )
        controller.admit("noisy")
        with pytest.raises(AdmissionError):
            controller.admit("noisy")
        controller.admit("quiet")  # other tenants unaffected
        assert controller.shed_tenant_cap == 1

    def test_release_without_admit_is_an_error(self):
        from repro.errors import ServeError

        controller = AdmissionController()
        with pytest.raises(ServeError):
            controller.release("ghost")

    def test_http_submissions_shed_with_429(self):
        async def scenario():
            app = ServeApp(
                ServeConfig(
                    admission=AdmissionPolicy(
                        max_queue_depth=8, max_tenant_inflight=1
                    )
                )
            )
            # Workers never started, so admitted jobs stay in flight and
            # shedding decisions are deterministic.
            payload = {"kind": "campaign", "spec": CAMPAIGN_SPEC}
            first = await app.handle(
                make_request("POST", "/v1/jobs", payload, tenant="t1")
            )
            second = await app.handle(
                make_request("POST", "/v1/jobs", payload, tenant="t1")
            )
            other = await app.handle(
                make_request("POST", "/v1/jobs", payload, tenant="t2")
            )
            stats = await app.handle(make_request("GET", "/v1/stats"))
            return first, second, other, json.loads(stats.body)

        first, second, other, stats = run(scenario())
        assert first.status == 202
        assert second.status == 429
        assert "retry later" in json.loads(second.body)["error"]
        assert other.status == 202
        assert stats["admission"]["serve.admission.shed_tenant_cap"] == 1
        assert stats["admission"]["inflight"] == 2
        assert sum(stats["jobs"]["queue_depths"]) == 2

    def test_global_queue_cap_over_http(self):
        async def scenario():
            app = ServeApp(
                ServeConfig(
                    admission=AdmissionPolicy(
                        max_queue_depth=2, max_tenant_inflight=8
                    )
                )
            )
            payload = {"kind": "campaign", "spec": CAMPAIGN_SPEC}
            statuses = []
            for tenant in ("a", "b", "c"):
                response = await app.handle(
                    make_request("POST", "/v1/jobs", payload, tenant=tenant)
                )
                statuses.append(response.status)
            return statuses

        assert run(scenario()) == [202, 202, 429]


class TestJobValidation:
    def test_malformed_spec_is_400(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            return await app.handle(
                make_request(
                    "POST",
                    "/v1/jobs",
                    {"kind": "campaign", "spec": {"bogus_field": 1}},
                )
            )

        response = run(scenario())
        assert response.status == 400
        assert "bogus_field" in json.loads(response.body)["error"]

    def test_unknown_kind_is_400(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            return await app.handle(
                make_request(
                    "POST", "/v1/jobs", {"kind": "lottery", "spec": {}}
                )
            )

        response = run(scenario())
        assert response.status == 400

    def test_missing_spec_is_400(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            return await app.handle(
                make_request("POST", "/v1/jobs", {"kind": "campaign"})
            )

        response = run(scenario())
        assert response.status == 400

    def test_unknown_job_id_is_404(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            return await app.handle(
                make_request("GET", "/v1/jobs/job-999999-deadbeef")
            )

        response = run(scenario())
        assert response.status == 404

    def test_unknown_reference_graph_is_400(self):
        async def scenario():
            app = ServeApp(ServeConfig())
            return await app.handle(
                make_request(
                    "POST",
                    "/v1/jobs",
                    {
                        "kind": "network_campaign",
                        "spec": {"graph": "moebius"},
                    },
                )
            )

        response = run(scenario())
        assert response.status == 400
        assert "moebius" in json.loads(response.body)["error"]


class TestJobTelemetry:
    @pytest.mark.slow
    def test_lifecycle_events_are_emitted(self):
        sink = telemetry.AggregatorSink()
        telemetry.start([sink])
        try:

            async def scenario():
                app = ServeApp(ServeConfig())
                await app.start()
                try:
                    return await submit_and_wait(
                        app, "campaign", CAMPAIGN_SPEC
                    )
                finally:
                    await app.stop()

            record = run(scenario())
        finally:
            telemetry.stop()
        assert record["state"] == "done"
        assert sink.counts.get("serve.job.start") == 1
        assert sink.counts.get("serve.job.end") == 1
        end = sink.last["serve.job.end"]
        assert end["state"] == "done"
        assert end["job_id"] == record["id"]
        assert sink.counts.get("serve.start") == 1
        assert sink.counts.get("serve.stop") == 1
        assert sink.counts.get("metrics", 0) >= 1
