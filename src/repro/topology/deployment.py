"""Deployment topology: placement of role instances on VMs/hosts/racks.

:class:`DeploymentTopology` validates the containment hierarchy and exposes
the queries the availability engine needs:

* the *support chain* of a role instance (its VM, host, and rack),
* which elements are *shared* (support more than one role instance) versus
  *private* — shared elements must be conditioned on jointly during exact
  evaluation, while private elements fold into the instance's own survival
  probability (see :mod:`repro.models.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import TopologyError
from repro.topology.elements import Host, Rack, RoleInstance, Vm


@dataclass(frozen=True)
class DeploymentTopology:
    """An immutable, validated deployment of a controller cluster.

    Attributes:
        name: topology label (e.g. ``"Small"``).
        racks, hosts, vms: the containment hierarchy.
        instances: role instances placed on VMs.  Multiple instances may
            share a VM (the Small topology's combined GCAD VMs).
    """

    name: str
    racks: tuple[Rack, ...]
    hosts: tuple[Host, ...]
    vms: tuple[Vm, ...]
    instances: tuple[RoleInstance, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", tuple(self.racks))
        object.__setattr__(self, "hosts", tuple(self.hosts))
        object.__setattr__(self, "vms", tuple(self.vms))
        object.__setattr__(self, "instances", tuple(self.instances))
        self._validate()

    def _validate(self) -> None:
        rack_names = {r.name for r in self.racks}
        if len(rack_names) != len(self.racks):
            raise TopologyError("duplicate rack names")
        host_names = {h.name for h in self.hosts}
        if len(host_names) != len(self.hosts):
            raise TopologyError("duplicate host names")
        vm_names = {v.name for v in self.vms}
        if len(vm_names) != len(self.vms):
            raise TopologyError("duplicate VM names")
        overlap = rack_names & host_names | rack_names & vm_names | host_names & vm_names
        if overlap:
            raise TopologyError(f"element names reused across levels: {overlap}")
        for host in self.hosts:
            if host.rack not in rack_names:
                raise TopologyError(
                    f"host {host.name!r} references unknown rack {host.rack!r}"
                )
        for vm in self.vms:
            if vm.host not in host_names:
                raise TopologyError(
                    f"VM {vm.name!r} references unknown host {vm.host!r}"
                )
        seen_instances = set()
        for instance in self.instances:
            if instance.vm not in vm_names:
                raise TopologyError(
                    f"instance {instance.label} references unknown VM "
                    f"{instance.vm!r}"
                )
            key = (instance.role, instance.index)
            if key in seen_instances:
                raise TopologyError(
                    f"duplicate placement for instance {instance.label}"
                )
            seen_instances.add(key)

    # -- lookups ----------------------------------------------------------------

    def host_of_vm(self, vm_name: str) -> Host:
        for vm in self.vms:
            if vm.name == vm_name:
                for host in self.hosts:
                    if host.name == vm.host:
                        return host
        raise TopologyError(f"unknown VM {vm_name!r}")

    def rack_of_host(self, host_name: str) -> Rack:
        for host in self.hosts:
            if host.name == host_name:
                for rack in self.racks:
                    if rack.name == host.rack:
                        return rack
        raise TopologyError(f"unknown host {host_name!r}")

    def role_names(self) -> tuple[str, ...]:
        """Distinct role names in placement order of first appearance."""
        seen: list[str] = []
        for instance in self.instances:
            if instance.role not in seen:
                seen.append(instance.role)
        return tuple(seen)

    def instances_of(self, role: str) -> tuple[RoleInstance, ...]:
        """All placed instances of a role, ordered by index."""
        found = sorted(
            (i for i in self.instances if i.role == role),
            key=lambda i: i.index,
        )
        if not found:
            raise TopologyError(f"no instances of role {role!r} placed")
        return tuple(found)

    def replica_count(self, role: str) -> int:
        return len(self.instances_of(role))

    # -- support chains and sharing ----------------------------------------------

    def support_chain(self, instance: RoleInstance) -> tuple[str, str, str]:
        """``(rack, host, vm)`` element names supporting an instance."""
        host = self.host_of_vm(instance.vm)
        return (host.rack, host.name, instance.vm)

    def element_support(self) -> dict[str, set[tuple[str, int]]]:
        """Map from element name to the set of role instances it supports.

        Rack support includes every instance on any VM in the rack, etc.
        """
        support: dict[str, set[tuple[str, int]]] = {}
        for instance in self.instances:
            rack, host, vm = self.support_chain(instance)
            key = (instance.role, instance.index)
            for element in (rack, host, vm):
                support.setdefault(element, set()).add(key)
        return support

    def shared_elements(self) -> tuple[str, ...]:
        """Elements supporting more than one role instance, hierarchy order.

        These are the elements the exact availability engine must enumerate
        jointly; everything else folds into per-instance probabilities.
        Returned racks first, then hosts, then VMs, each sorted by name, so
        enumeration order is deterministic.
        """
        support = self.element_support()
        shared = {name for name, inst in support.items() if len(inst) > 1}
        ordered: list[str] = []
        for group in (self.racks, self.hosts, self.vms):
            ordered.extend(
                e.name for e in sorted(group) if e.name in shared
            )
        return tuple(ordered)

    def parent_of(self, element: str) -> str | None:
        """Containing element (VM -> host, host -> rack, rack -> None)."""
        for vm in self.vms:
            if vm.name == element:
                return vm.host
        for host in self.hosts:
            if host.name == element:
                return host.rack
        for rack in self.racks:
            if rack.name == element:
                return None
        raise TopologyError(f"unknown element {element!r}")

    def level_of(self, element: str) -> str:
        """``'rack'``, ``'host'``, or ``'vm'``."""
        if any(r.name == element for r in self.racks):
            return "rack"
        if any(h.name == element for h in self.hosts):
            return "host"
        if any(v.name == element for v in self.vms):
            return "vm"
        raise TopologyError(f"unknown element {element!r}")

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        return (
            f"{self.name}: {len(self.racks)} rack(s), {len(self.hosts)} "
            f"host(s), {len(self.vms)} VM(s), {len(self.instances)} role "
            f"instance(s) across roles {', '.join(self.role_names())}"
        )
