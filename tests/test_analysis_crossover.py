"""Tests for crossover detection (repro.analysis.crossover)."""

import pytest

from repro.analysis.crossover import (
    option_crossover_orders,
    refine_crossing,
    sweep_crossings,
)
from repro.analysis.figures import fig4_series
from repro.analysis.sweep import sweep
from repro.errors import ParameterError


class TestRefineCrossing:
    def test_linear_root(self):
        root = refine_crossing(lambda x: x - 0.3, 0.0, 1.0)
        assert root == pytest.approx(0.3, abs=1e-5)

    def test_endpoint_roots(self):
        assert refine_crossing(lambda x: x, 0.0, 1.0) == 0.0
        assert refine_crossing(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_unbracketed_rejected(self):
        with pytest.raises(ParameterError):
            refine_crossing(lambda x: 1.0, 0.0, 1.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ParameterError):
            refine_crossing(lambda x: x, 1.0, 0.0)


class TestSweepCrossings:
    def test_detects_single_crossing(self):
        result = sweep(
            "x",
            [0.0, 0.5, 1.0],
            {"up": lambda x: x, "down": lambda x: 1 - x},
        )
        brackets = sweep_crossings(result, "up", "down")
        # The curves touch exactly at the x = 0.5 grid point, so both
        # adjacent intervals bracket the crossing.
        assert (0.0, 0.5) in brackets
        assert all(lo <= 0.5 <= hi for lo, hi in brackets)

    def test_no_crossing(self):
        result = sweep(
            "x", [0.0, 1.0], {"a": lambda x: x, "b": lambda x: x + 1}
        )
        assert sweep_crossings(result, "a", "b") == []

    def test_unknown_label_rejected(self):
        result = sweep("x", [0.0, 1.0], {"a": lambda x: x})
        with pytest.raises(ParameterError):
            sweep_crossings(result, "a", "ghost")


class TestOptionCrossovers:
    def test_1s_crosses_2l_on_cp(self, spec, hardware, software):
        """Below a certain process maturity, one rack without supervisor
        dependence beats three racks with it — the design guidance flips.

        From the Fig. 4 series the crossing sits between x = -0.6 and
        x = -0.4 orders of magnitude.
        """
        crossing = option_crossover_orders(
            spec, hardware, software, "1S", "2L"
        )
        assert crossing is not None
        assert -0.6 < crossing < -0.4

    def test_crossing_matches_sweep_bracket(self, spec, hardware, software):
        result = fig4_series(spec, hardware, software, points=11)
        brackets = sweep_crossings(result, "1S", "2L")
        assert len(brackets) == 1
        lo, hi = brackets[0]
        crossing = option_crossover_orders(
            spec, hardware, software, "1S", "2L"
        )
        assert lo <= crossing <= hi

    def test_dominated_pairs_return_none(self, spec, hardware, software):
        # 1L dominates 2L at every sweep point (same topology, strictly
        # weaker requirement).
        assert (
            option_crossover_orders(spec, hardware, software, "1L", "2L")
            is None
        )

    def test_dp_plane_supported(self, spec, hardware, software):
        # On the DP, the supervisor penalty dominates everywhere: no
        # crossing between 1S and 2L.
        assert (
            option_crossover_orders(
                spec, hardware, software, "1S", "2L", plane="dp"
            )
            is None
        )
