"""Hardware availability parameters.

The HW-centric models (section V) are parameterized by four availabilities:

* ``a_role`` (the paper's ``A_C``) — one instance of any controller role,
* ``a_vm`` (``A_V``) — a VM including its guest OS,
* ``a_host`` (``A_H``) — a host including host OS and hypervisor,
* ``a_rack`` (``A_R``) — a rack.

Section V-D also derives host availability from MTBF and the maintenance
contract: Same Day (4 h MTTR), Next Day (24 h), Next Business Day (48 h);
:meth:`HardwareParams.with_maintenance` reproduces that calculation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.units import (
    HOURS_PER_YEAR,
    availability_from_mtbf,
    check_positive,
    check_probability,
)


class MaintenanceLevel(enum.Enum):
    """Maintenance contract and its typical mean time to restore (hours).

    The paper's section V-D: Same Day (hardened Telco site, spare HW and
    24x7 staffing) -> 4 h; Next Day -> 24 h after intra-day incident timing;
    Next Business Day -> 48 h after intra-week timing.
    """

    SAME_DAY = 4.0
    NEXT_DAY = 24.0
    NEXT_BUSINESS_DAY = 48.0

    @property
    def mttr_hours(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class HardwareParams:
    """The four hardware-level availabilities of the HW-centric models."""

    a_role: float
    a_vm: float
    a_host: float
    a_rack: float

    def __post_init__(self) -> None:
        check_probability(self.a_role, "a_role (A_C)")
        check_probability(self.a_vm, "a_vm (A_V)")
        check_probability(self.a_host, "a_host (A_H)")
        check_probability(self.a_rack, "a_rack (A_R)")

    def with_role_availability(self, a_role: float) -> "HardwareParams":
        """Copy with a different role availability — the Fig. 3 sweep axis."""
        return replace(self, a_role=a_role)

    def with_maintenance(
        self, level: MaintenanceLevel, mtbf_years: float = 5.0
    ) -> "HardwareParams":
        """Copy with host availability derived from MTBF and a maintenance level.

        The paper: "enterprise-grade servers may have a MTBF in the 5-year
        range", giving ``A_H`` from 0.9990 (NBD) through 0.9995 (ND) to
        0.9999 (SD).
        """
        check_positive(mtbf_years, "mtbf_years")
        mtbf_hours = mtbf_years * HOURS_PER_YEAR
        return replace(
            self, a_host=availability_from_mtbf(mtbf_hours, level.mttr_hours)
        )

    @property
    def node_block(self) -> float:
        """Combined {role+VM+host} availability — the Small/Large alpha."""
        return self.a_role * self.a_vm * self.a_host

    @property
    def vm_block(self) -> float:
        """Combined {role+VM} availability — the Medium alpha."""
        return self.a_role * self.a_vm

    @property
    def vm_host_block(self) -> float:
        """Combined {VM+host} availability — the SW-centric block weight."""
        return self.a_vm * self.a_host
