"""Micro-batching of concurrent requests into one vectorized evaluation.

Closed-form hardware availability queries are tiny — a handful of scalar
parameters in, one float out — so answering each concurrent request with
its own numpy call wastes the vectorized kernels in
:mod:`repro.perf.vectorized`.  :class:`MicroBatcher` instead collects the
requests that arrive within a short window (or until the batch is full)
and lowers them into **one** array call; each waiter then receives its own
element of the result.

Because the lowered kernels are elementwise over their parameter arrays,
a batched evaluation is *exactly* equal — not just close — to evaluating
each request alone; ``tests/test_serve_cache.py`` pins that equivalence.

The batcher is generic: it is constructed with a ``lower`` callable taking
a list of payloads and returning a list of results of the same length.
Failures of ``lower`` propagate to every request in the batch and are not
retried.

When a request trace (:func:`repro.serve.tracing.current_request`) is in
scope at ``submit`` time it is captured alongside the payload — the flush
runs from a ``call_later`` callback in a *different* context, so the
ambient scope is gone by then — and at flush each waiter's trace is
attributed ``batch_assembly`` (enqueue → flush start: time spent waiting
for the window) and ``kernel_compute`` (the whole lowered call: every
waiter paid for it in wall time, regardless of batch size).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Sequence

from repro.errors import ParameterError, ServeError
from repro.serve.tracing import RequestTrace, current_request

__all__ = ["DEFAULT_WINDOW_SECONDS", "DEFAULT_MAX_BATCH", "MicroBatcher"]

#: Default gather window: long enough to coalesce a concurrent burst,
#: short enough to be invisible next to network round-trip time.
DEFAULT_WINDOW_SECONDS = 0.002

#: Default batch-size bound; a full batch flushes immediately.
DEFAULT_MAX_BATCH = 256


class MicroBatcher:
    """Collects requests for ``window_seconds`` and lowers them together.

    ``lower`` is called with the list of pending payloads (in arrival
    order) and must return one result per payload, in order.  It runs on
    the event loop; CPU-light numpy kernels over a few hundred elements
    are fine there, and ``lower`` may itself be wrapped in
    ``asyncio.to_thread`` by the caller when it is not.
    """

    def __init__(
        self,
        lower: Callable[[list[Any]], Sequence[Any]],
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        if window_seconds < 0:
            raise ParameterError(
                f"window_seconds must be >= 0, got {window_seconds}"
            )
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self._lower = lower
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self._pending: list[
            tuple[Any, asyncio.Future, RequestTrace | None, float]
        ] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self.batches = 0
        self.requests = 0
        self.largest_batch = 0

    async def submit(self, payload: Any) -> Any:
        """Enqueue one payload and await its element of the batch result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append(
            (payload, future, current_request(), time.perf_counter())
        )
        self.requests += 1
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._flush_handle is None:
            if self.window_seconds == 0.0:
                self._flush_handle = loop.call_soon(self._flush)
            else:
                self._flush_handle = loop.call_later(
                    self.window_seconds, self._flush
                )
        return await future

    def _flush(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches += 1
        if len(batch) > self.largest_batch:
            self.largest_batch = len(batch)
        payloads = [payload for payload, _, _, _ in batch]
        flush_started = time.perf_counter()
        try:
            results = self._lower(payloads)
        except BaseException as error:  # propagate to every waiter
            for _, future, _, _ in batch:
                if not future.done():
                    future.set_exception(error)
            return
        kernel_seconds = time.perf_counter() - flush_started
        if len(results) != len(batch):
            mismatch = ServeError(
                f"batch lowering returned {len(results)} results for "
                f"{len(batch)} requests"
            )
            for _, future, _, _ in batch:
                if not future.done():
                    future.set_exception(mismatch)
            return
        for (_, future, trace, enqueued), result in zip(batch, results):
            if trace is not None:
                trace.add_segment("batch_assembly", flush_started - enqueued)
                trace.add_segment("kernel_compute", kernel_seconds)
                trace.annotate(batch_size=len(batch))
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Flush anything pending now (used at shutdown and in tests)."""
        self._flush()
        await asyncio.sleep(0)

    def counters(self) -> dict[str, int]:
        """Current counter values, keyed for the metrics registry."""
        return {
            "serve.batch.batches": self.batches,
            "serve.batch.requests": self.requests,
            "serve.batch.largest": self.largest_batch,
        }
