"""Campaign-versus-analytic cross-validation.

Every campaign has a *matching analytic prediction* — what the paper's
models say the availabilities should be if failures were independent and
repair capacity unlimited:

* **No maintenance hazards** — the closed-form predictions of
  :func:`repro.sim.validate.analytic_predictions` (with the scenario-1
  effective-availability correction), exactly the comparison target of the
  existing ``repro-avail simulate`` validation.
* **Maintenance hazards** — deterministic duty cycles are analytically
  tractable: the exact engine (:mod:`repro.models.engine`) is evaluated
  under a mixture of availability regimes
  (:func:`~repro.models.engine.evaluate_topology_weighted`), where each
  maintenance window contributes an "element down" regime weighted by its
  duty fraction.  Only infrastructure targets (``rack:``/``host:``/``vm:``)
  have an analytic counterpart.

Stochastic hazards (common cause, rack power) deliberately have **no**
analytic counterpart — the reported gap *is* the measurement: how wrong the
independence assumption becomes under correlated failures.

The load-bearing invariant (asserted by ``tests/test_faults_crossval.py``):
a degenerate campaign — ``beta = 0``, no maintenance, unlimited crews —
must reproduce the independent analytic CP/SDP/LDP availabilities within
the campaign's Monte-Carlo confidence interval.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.controller.spec import Plane
from repro.errors import CampaignError
from repro.models.engine import evaluate_topology_weighted
from repro.models.dataplane import local_dp_availability
from repro.models.sw import plane_requirements
from repro.params.software import RestartScenario, SoftwareParams
from repro.sim.validate import analytic_predictions
from repro.faults.campaign import CampaignResult, CampaignSpec, run_campaign
from repro.faults.hazards import MaintenanceSpec
from repro.faults.campaign import materialize

__all__ = ["CrossValidation", "analytic_for_campaign", "evaluate_campaign"]

_PLANES = ("cp", "sdp", "ldp", "dp")

_INFRA_PREFIXES = ("rack", "host", "vm")


def _maintenance_element(target: str) -> str:
    """Map a maintenance target to its topology element name.

    Only infrastructure selectors have an analytic counterpart; the engine's
    containment hierarchy already masks everything beneath a down element,
    so ``"rack:R1"`` and ``"rack:R1/*"`` both reduce to element ``"R1"``.
    """
    selector = target[:-2] if target.endswith("/*") else target
    prefix, _, name = selector.partition(":")
    if prefix not in _INFRA_PREFIXES or not name:
        raise CampaignError(
            "analytic cross-validation supports only infrastructure "
            f"maintenance targets (rack:/host:/vm:), got {target!r}"
        )
    return name


def analytic_for_campaign(spec: CampaignSpec) -> dict[str, float]:
    """The independent-failure analytic prediction matching a campaign.

    Returns cp/sdp/ldp/dp availabilities at the campaign's parameters,
    accounting for deterministic maintenance duty cycles (engine mixture)
    but — by design — not for stochastic correlation or repair contention.
    """
    controller, topology, hardware, software, scenario = materialize(spec)
    windows = [
        hazard for hazard in spec.hazards
        if isinstance(hazard, MaintenanceSpec)
    ]
    if not windows:
        return analytic_predictions(
            controller, topology.name, hardware, software, scenario
        )
    if scenario is RestartScenario.NOT_REQUIRED:
        software = SoftwareParams.from_availabilities(
            software.effective_availability(scenario),
            software.a_unsupervised,
            mtbf_hours=software.mtbf_hours,
        )
    base = {
        "rack": hardware.a_rack,
        "host": hardware.a_host,
        "vm": hardware.a_vm,
    }
    elements = [_maintenance_element(window.target) for window in windows]
    regimes = []
    for bits in itertools.product((False, True), repeat=len(windows)):
        weight = 1.0
        overrides = dict(base)
        for window, element, open_ in zip(windows, elements, bits):
            f = window.duty_fraction
            weight *= f if open_ else (1.0 - f)
            if open_:
                overrides[element] = 0.0
        if weight > 0.0:
            regimes.append((weight, overrides))
    predictions = {}
    for plane_name, plane in (("cp", Plane.CP), ("sdp", Plane.DP)):
        requirements = plane_requirements(
            controller, plane, software, scenario
        )
        predictions[plane_name] = evaluate_topology_weighted(
            topology, requirements, regimes
        )
    predictions["ldp"] = local_dp_availability(controller, software, scenario)
    predictions["dp"] = predictions["sdp"] * predictions["ldp"]
    return predictions


@dataclass(frozen=True)
class CrossValidation:
    """One campaign's measured availabilities next to the analytic prediction."""

    spec: CampaignSpec
    analytic: dict[str, float]
    result: CampaignResult

    def simulated(self, plane: str) -> float:
        return self.result.availability(plane)

    def gap(self, plane: str) -> float:
        """Simulated minus analytic availability (negative: hazards hurt)."""
        return self.simulated(plane) - self.analytic[plane]

    def unavailability_ratio(self, plane: str) -> float:
        """Simulated / analytic unavailability — 1.0 is perfect agreement."""
        analytic = self.analytic[plane]
        simulated = self.simulated(plane)
        if analytic >= 1.0:
            return 1.0 if simulated >= 1.0 else float("inf")
        return (1.0 - simulated) / (1.0 - analytic)

    def within_interval(self, plane: str, widen: float = 1.0) -> bool:
        """Whether the analytic value falls inside the campaign's CI.

        The interval is the across-replication 95% CI; ``widen`` scales its
        half-width (e.g. ``widen=1.5`` for a more conservative acceptance
        band in statistical tests).
        """
        interval = self.result.interval(plane)
        return (
            abs(self.analytic[plane] - interval.mean)
            <= interval.half_width * widen
        )


def evaluate_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    result: CampaignResult | None = None,
    batched: str = "auto",
) -> CrossValidation:
    """Run (or reuse) a campaign and attach its analytic prediction."""
    if result is None:
        result = run_campaign(spec, workers=workers, batched=batched)
    return CrossValidation(
        spec=spec,
        analytic=analytic_for_campaign(spec),
        result=result,
    )
