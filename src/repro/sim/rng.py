"""Reproducible random-number streams.

Each simulated component draws from its own numpy Generator, spawned from a
single root seed via ``SeedSequence``; runs are bit-reproducible for a given
seed and component set, and independent across components regardless of the
event interleaving.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class RngStreams:
    """A family of named, independent random streams under one root seed."""

    def __init__(self, seed: int):
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._counter = 0

    def stream(self, name: str) -> np.random.Generator:
        """The generator dedicated to ``name`` (created on first use).

        Streams are spawned in first-use order, so a run is reproducible as
        long as components are registered in a deterministic order.
        """
        if name not in self._streams:
            child = self._root.spawn(1)[0]
            self._streams[name] = np.random.default_rng(child)
            self._counter += 1
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean from ``name``'s stream."""
        if mean <= 0:
            raise SimulationError(
                f"exponential mean must be > 0, got {mean} for {name!r}"
            )
        return float(self.stream(name).exponential(mean))
