"""Smoke tests: every example script runs cleanly and prints its findings.

``simulation_validation.py`` runs a long Monte-Carlo horizon and is
exercised separately (its machinery is covered by tests/test_sim_*.py),
so it is only checked for compilability here.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", "headline conclusion"),
    ("custom_controller.py", "RAFT design"),
    ("topology_tradeoff.py", "Where to spend"),
    ("process_maturity.py", "maturity sweep"),
    ("failure_walkthrough.py", "one-third of the"),
    ("outage_frequency.py", "highly-publicized extended"),
    ("design_search.py", "third rack"),
    ("automation_payoff.py", "minutes/year per host"),
    ("fault_campaign.py", "independence assumption"),
]


class TestExamples:
    @pytest.mark.parametrize("name, marker", FAST_EXAMPLES)
    def test_example_runs(self, name, marker):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert marker in result.stdout, f"{name} output changed"

    def test_all_examples_compile(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 10
        for script in scripts:
            py_compile.compile(str(script), doraise=True)
