"""Tests for the alternative controller profiles (repro.controller.library)."""

import pytest

from repro.controller.library import (
    flat_consensus_controller,
    hardened_opencontrail,
    kubernetes_style_controller,
    split_state_controller,
    toy_controller,
)
from repro.controller.spec import Plane
from repro.models.sw import cp_availability
from repro.models.sw_options import evaluate_option
from repro.params.software import RestartScenario


class TestKubernetesStyle:
    def test_tables(self):
        spec = kubernetes_style_controller()
        assert spec.restart_mode_table() == {"ControlPlane": (3, 1)}
        assert spec.quorum_table(Plane.CP) == {"ControlPlane": (1, 3)}
        assert spec.quorum_table(Plane.DP) == {"ControlPlane": (0, 0)}

    def test_host_role_is_kubelet_pair(self):
        spec = kubernetes_style_controller()
        node = spec.host_role
        assert {p.name for p in node.regular_processes} == {
            "kubelet",
            "kube-proxy",
        }

    def test_evaluates_on_reference_topologies(self, hardware, software):
        spec = kubernetes_style_controller()
        result = evaluate_option(spec, "2L", hardware, software)
        assert 0.999 < result.cp < 1.0
        assert 0.999 < result.dp < 1.0

    def test_five_node_cluster(self):
        spec = kubernetes_style_controller(cluster_size=5)
        etcd = spec.role("ControlPlane").process("etcd")
        assert etcd.cp_quorum == 3


class TestHardenedOpenContrail:
    def test_no_manual_regular_processes(self):
        spec = hardened_opencontrail()
        for role in spec.cluster_roles:
            auto, manual = role.restart_counts()
            assert manual == 0, role.name

    def test_quorums_preserved(self, spec):
        hardened = hardened_opencontrail()
        assert hardened.quorum_table(Plane.CP) == spec.quorum_table(Plane.CP)
        assert hardened.quorum_table(Plane.DP) == spec.quorum_table(Plane.DP)

    def test_automation_pays_off(self, spec, hardware, software):
        # The paper's recommendation, quantified: automating the manual
        # restarts cuts CP downtime in both scenarios.
        hardened = hardened_opencontrail()
        for scenario in RestartScenario:
            base = cp_availability(
                spec, "large", hardware, software, scenario
            )
            improved = cp_availability(
                hardened, "large", hardware, software, scenario
            )
            assert improved > base
        # In scenario 1 the Database pair modes vanish: ~2x less downtime.
        base_u = 1 - cp_availability(
            spec, "large", hardware, software, RestartScenario.NOT_REQUIRED
        )
        hard_u = 1 - cp_availability(
            hardened, "large", hardware, software,
            RestartScenario.NOT_REQUIRED,
        )
        assert hard_u < 0.7 * base_u

    def test_supervisor_still_manual(self):
        # Hardening the regular processes does not change the supervisor
        # itself (its restart procedure is structural).
        hardened = hardened_opencontrail()
        from repro.controller.process import RestartMode

        assert (
            hardened.role("Database").supervisor.restart
            is RestartMode.MANUAL
        )


class TestProfileSmoke:
    @pytest.mark.parametrize(
        "factory",
        [
            flat_consensus_controller,
            split_state_controller,
            kubernetes_style_controller,
            hardened_opencontrail,
            toy_controller,
        ],
    )
    def test_all_profiles_evaluate(self, factory, hardware, software):
        spec = factory()
        value = cp_availability(
            spec, "small", hardware, software, RestartScenario.REQUIRED
        )
        assert 0.99 < value < 1.0
