"""A5 — outage frequency/duration decomposition (the §V-D / §VII warning).

Quantifies the paper's qualitative claim that the Small topology's
availability hides rare-but-long rack outages ("no rack downtime for many
years followed by a highly-publicized extended outage"), while the Large
topology converts them into short process-level events — and the fleet
arithmetic ("for a ... provider with 500 edge sites, a yearly outage may
be unacceptable").
"""

import pytest

from repro.controller.spec import Plane
from repro.models.outage import fleet_outages_per_year, plane_outage_profile
from repro.params.software import RestartScenario
from repro.reporting.tables import format_table
from repro.topology.reference import large_topology, small_topology


def outage_table(spec, hardware, software):
    rows = []
    for name, topology in (
        ("small", small_topology(spec)),
        ("large", large_topology(spec)),
    ):
        profile = plane_outage_profile(
            spec, topology, hardware, software,
            RestartScenario.NOT_REQUIRED, Plane.CP,
        )
        rows.append((name, profile))
    return rows


def test_outage_profile(benchmark, spec, hardware, software):
    rows = benchmark(outage_table, spec, hardware, software)
    print(
        "\n"
        + format_table(
            (
                "Topology",
                "CP downtime m/y",
                "Outages/yr (site)",
                "Mean outage (h)",
                "Outages/yr (500 sites)",
            ),
            [
                (
                    name,
                    f"{p.downtime_minutes_per_year:.2f}",
                    f"{p.outages_per_year:.4f}",
                    f"{p.mean_outage_hours:.2f}",
                    f"{fleet_outages_per_year(p, 500):.1f}",
                )
                for name, p in rows
            ],
            title="Ablation A5: outage frequency vs duration (option 1*, CP)",
        )
    )
    small_profile = dict(rows)["small"]
    large_profile = dict(rows)["large"]
    # Small's outages are much longer (rack-dominated, ~48 h events in the
    # mixture); Large's are process-restart length.
    assert small_profile.mean_outage_hours > 5 * large_profile.mean_outage_hours
    # The fleet arithmetic: hundreds of sites make outages routine either
    # way — the differentiator is severity.
    assert fleet_outages_per_year(small_profile, 500) > 1.0
    # And the downtime identity U = w x d holds.
    for _, profile in rows:
        assert profile.unavailability == pytest.approx(
            profile.frequency_per_hour * profile.mean_outage_hours
        )
