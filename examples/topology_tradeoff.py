"""Cost : resiliency trade-off across deployment topologies.

The paper motivates the HW-centric models as a way to "quickly and easily
perform relative sensitivity analyses on various possible HW deployment
topologies, thus facilitating evaluation of the cost:resiliency tradeoff
before capital investment occurs."  This example performs that evaluation:

* downtime per topology (1, 2, 3 racks) under three maintenance contracts
  (Same Day / Next Day / Next Business Day host MTTR);
* a naive capital model (racks and hosts as cost units) to expose the
  knee of the curve;
* the tornado ranking showing *which* hardware parameter to spend on.

Run with::

    python examples/topology_tradeoff.py
"""

from repro import PAPER_HARDWARE, MaintenanceLevel
from repro.analysis.sensitivity import hardware_tornado
from repro.models.hw_closed import hw_large, hw_medium, hw_small
from repro.units import downtime_minutes_per_year

#: (racks, hosts) consumed by each reference topology — the cost drivers.
FOOTPRINT = {"Small": (1, 3), "Medium": (2, 3), "Large": (3, 12)}
MODELS = {"Small": hw_small, "Medium": hw_medium, "Large": hw_large}


def main() -> None:
    print("Downtime (min/yr) by topology and host maintenance contract:\n")
    print(f"{'topology':10} {'racks':>5} {'hosts':>5} "
          f"{'SD (4h)':>9} {'ND (24h)':>9} {'NBD (48h)':>10}")
    for name, model in MODELS.items():
        racks, hosts = FOOTPRINT[name]
        row = [f"{name:10} {racks:>5} {hosts:>5}"]
        for level in (
            MaintenanceLevel.SAME_DAY,
            MaintenanceLevel.NEXT_DAY,
            MaintenanceLevel.NEXT_BUSINESS_DAY,
        ):
            params = PAPER_HARDWARE.with_maintenance(level, mtbf_years=5.0)
            minutes = downtime_minutes_per_year(model(params))
            row.append(f"{minutes:>9.2f}")
        print(" ".join(row))

    print(
        "\nObservations (matching section V-D):\n"
        "* the second rack buys nothing — Medium is never better than Small;\n"
        "* the third rack buys ~5 min/yr at 4x the host count;\n"
        "* a better maintenance contract helps the spread-out Large\n"
        "  topology most, because hosts join its redundancy chain."
    )

    print("\nWhere to spend: added downtime if a parameter degrades 10x\n")
    for name, model in MODELS.items():
        impacts = hardware_tornado(model, PAPER_HARDWARE)
        ranked = sorted(impacts.items(), key=lambda kv: -kv[1])
        pretty = ", ".join(f"{k}={v:.1f} m/y" for k, v in ranked)
        print(f"  {name:7}: {pretty}")
    print(
        "\nThe single rack dominates the Small/Medium risk budget; once the\n"
        "quorum spans three racks, role software becomes the lever."
    )


if __name__ == "__main__":
    main()
