"""Time-weighted measurement of binary availability signals.

:class:`BinarySignal` integrates a boolean signal over simulated time —
the estimator of steady-state availability — and records per-batch means so
a confidence interval can be formed by the batch-means method (simulation
output is autocorrelated; i.i.d. formulas on raw samples would be wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError


class BinarySignal:
    """Integrates an up/down signal over time.

    Besides the time-weighted availability, the signal records *outage
    episodes* — maximal down intervals — enabling frequency/duration
    statistics that validate the cut-set outage calculus
    (:mod:`repro.analysis.frequency`).

    Instances sit on the simulator's per-event path (every state-changing
    event updates every signal), so the class is slotted.
    """

    __slots__ = (
        "name",
        "_state",
        "_last_change",
        "_up_time",
        "_total_time",
        "_outage_started",
        "_outage_durations",
    )

    def __init__(self, name: str, initial: bool, start_time: float = 0.0):
        self.name = name
        self._state = bool(initial)
        self._last_change = start_time
        self._up_time = 0.0
        self._total_time = 0.0
        self._outage_started = None if self._state else start_time
        self._outage_durations: list[float] = []

    @property
    def state(self) -> bool:
        return self._state

    def update(self, time: float, state: bool) -> None:
        """Record the signal value from ``time`` onward."""
        if time < self._last_change:
            raise SimulationError(
                f"signal {self.name!r} updated backwards in time"
            )
        elapsed = time - self._last_change
        self._total_time += elapsed
        if self._state:
            self._up_time += elapsed
        state = bool(state)
        if self._state and not state:
            self._outage_started = time
        elif not self._state and state:
            if self._outage_started is not None:
                self._outage_durations.append(time - self._outage_started)
            self._outage_started = None
        self._state = state
        self._last_change = time

    @property
    def outage_count(self) -> int:
        """Completed outage episodes observed so far."""
        return len(self._outage_durations)

    @property
    def outage_durations(self) -> tuple[float, ...]:
        """Durations of the completed outage episodes."""
        return tuple(self._outage_durations)

    def mean_outage_duration(self) -> float:
        """Mean completed-outage length; raises when none were observed."""
        if not self._outage_durations:
            raise SimulationError(
                f"signal {self.name!r} observed no completed outages"
            )
        return sum(self._outage_durations) / len(self._outage_durations)

    def outage_frequency(self) -> float:
        """Completed outages per unit of observed time."""
        if self._total_time <= 0:
            raise SimulationError(
                f"signal {self.name!r} observed no time; run the simulation"
            )
        return len(self._outage_durations) / self._total_time

    def finalize(self, time: float) -> None:
        """Close the integration window at the horizon."""
        self.update(time, self._state)

    @property
    def observed_time(self) -> float:
        return self._total_time

    def cumulative(self) -> tuple[float, float]:
        """``(up_time, total_time)`` integrated so far — batch bookkeeping."""
        return self._up_time, self._total_time

    def availability(self) -> float:
        """Fraction of observed time the signal was up."""
        if self._total_time <= 0:
            raise SimulationError(
                f"signal {self.name!r} observed no time; run the simulation"
            )
        return self._up_time / self._total_time


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric normal-approximation confidence interval."""

    mean: float
    half_width: float
    batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def batch_means_interval(
    batch_values: list[float], z: float = 1.96
) -> ConfidenceInterval:
    """Batch-means confidence interval from per-batch availability means.

    Standard method for steady-state simulation output: split the horizon
    into equal batches, treat batch means as approximately i.i.d. normal.
    Requires at least 2 batches.
    """
    k = len(batch_values)
    if k < 2:
        raise SimulationError(
            f"batch-means needs at least 2 batches, got {k}"
        )
    mean = sum(batch_values) / k
    variance = sum((v - mean) ** 2 for v in batch_values) / (k - 1)
    half_width = z * math.sqrt(variance / k)
    return ConfidenceInterval(mean=mean, half_width=half_width, batches=k)
