"""Process-level specification — one row of the paper's Table I.

Each controller process is described by its restart mode (who restarts it
after a failure) and its quorum requirements for the SDN control plane (CP)
and the host data plane (DP).  A quorum requirement of ``m`` means "at least
``m`` of the role's instances of this process must be up" — the paper's
"m of 3" entries, with ``0`` meaning the process is never required for that
plane (e.g. *supervisor* and *nodemgr* are "0 of 3" for both planes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SpecError


class RestartMode(enum.Enum):
    """How a failed process instance is restored.

    AUTO
        Restarted by the node-role's *supervisor* process; restores in the
        fast auto-restart time ``R`` and so carries availability ``A``.
    MANUAL
        Not under supervisor control (e.g. *redis*, the Database processes,
        and the *supervisor* itself); restores in the manual restart time
        ``R_S`` and so carries availability ``A_S``.
    """

    AUTO = "auto"
    MANUAL = "manual"


class ProcessKind(enum.Enum):
    """Distinguishes the paper's "common" processes from regular ones.

    The *supervisor* and *nodemgr* processes exist in every role but are
    excluded from the Table II restart-mode counts and carry "0 of n" quorum
    requirements; the supervisor additionally drives the scenario-2
    ("supervisor required") conditioning of section VI.
    """

    REGULAR = "regular"
    SUPERVISOR = "supervisor"
    NODEMGR = "nodemgr"


@dataclass(frozen=True)
class ProcessSpec:
    """One process within a role.

    Attributes:
        name: process name, unique within its role (e.g. ``"config-api"``).
        restart: who restarts the process after failure.
        cp_quorum: minimum instances (out of the role's replica count)
            required for SDN control-plane availability; 0 = not required.
        dp_quorum: minimum instances required for host data-plane
            availability; 0 = not required.
        dp_group: optional co-location group label.  Processes of a role
            sharing a ``dp_group`` must be up *on the same node* to satisfy
            the data plane — the paper's ``{control+dns+named}`` "1 of 3"
            block, "modeled as a single process with availability A^3"
            (Table III footnote).  Grouped processes must declare identical
            ``dp_quorum`` values.
        kind: regular process, supervisor, or nodemgr.
    """

    name: str
    restart: RestartMode
    cp_quorum: int = 0
    dp_quorum: int = 0
    dp_group: str | None = None
    kind: ProcessKind = ProcessKind.REGULAR

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("process name must be non-empty")
        if self.cp_quorum < 0 or self.dp_quorum < 0:
            raise SpecError(
                f"quorum requirements must be >= 0 for process {self.name!r}"
            )
        if self.dp_group is not None and self.dp_quorum == 0:
            raise SpecError(
                f"process {self.name!r} declares dp_group {self.dp_group!r} "
                "but no dp_quorum; grouped processes must be DP-required"
            )
        if self.kind is not ProcessKind.REGULAR and (
            self.cp_quorum or self.dp_quorum
        ):
            raise SpecError(
                f"{self.kind.value} process {self.name!r} must be '0 of n' "
                "for both planes (the paper models supervisor/nodemgr impact "
                "via restart scenarios, not quorums)"
            )


def supervisor() -> ProcessSpec:
    """The per-node-role *supervisor* process (manual restart, 0-of-n)."""
    return ProcessSpec(
        "supervisor", RestartMode.MANUAL, kind=ProcessKind.SUPERVISOR
    )


def nodemgr() -> ProcessSpec:
    """The per-node-role *nodemgr* process (auto restart, 0-of-n)."""
    return ProcessSpec("nodemgr", RestartMode.AUTO, kind=ProcessKind.NODEMGR)
