"""Custom deployment layouts beyond the paper's three references.

The exact engine (:mod:`repro.models.engine`) evaluates *any* placement,
which lets us ask design questions the closed forms cannot:

* :func:`cross_rack_small` — the Small topology's three combined-role
  hosts, but one per rack.  Costs the same hardware as Small (3 hosts)
  while protecting the quorum from rack failure like Large does.
* :func:`database_spread` — only the Database role's hosts are spread
  across racks; the 1-of-3 roles stay in rack R1.  Tests whether
  protecting just the quorum role is enough (it is not: R1 remains an
  order-1 cut for the co-located 1-of-3 roles).
* :func:`check_anti_affinity` — placement policy validation: are a role's
  instances on distinct hosts/racks?
"""

from __future__ import annotations

from typing import Sequence

from repro.controller.spec import ControllerSpec
from repro.errors import TopologyError
from repro.topology.deployment import DeploymentTopology
from repro.topology.elements import Host, Rack, RoleInstance, Vm
from repro.topology.reference import _cluster_size, _role_names


def cross_rack_small(
    spec_or_roles: ControllerSpec | Sequence[str],
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """Small's hardware footprint with Large's rack diversity.

    Node ``i`` is one host in its own rack ``Ri`` running the combined
    GCAD VM — three hosts, three racks, twelve role instances.
    """
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    racks = tuple(Rack(f"R{i}") for i in range(1, n + 1))
    hosts = tuple(Host(f"H{i}", f"R{i}") for i in range(1, n + 1))
    vms = tuple(Vm(f"GCAD{i}", f"H{i}") for i in range(1, n + 1))
    instances = tuple(
        RoleInstance(role, i, f"GCAD{i}")
        for i in range(1, n + 1)
        for role in roles
    )
    return DeploymentTopology("CrossRackSmall", racks, hosts, vms, instances)


def database_spread(
    spec_or_roles: ControllerSpec | Sequence[str],
    quorum_role: str = "Database",
    cluster_size: int | None = None,
) -> DeploymentTopology:
    """Spread only the quorum role across racks; co-locate the rest in R1.

    The quorum role's instances get dedicated hosts in racks R1..Rn; the
    remaining roles share combined VMs on hosts in rack R1.
    """
    roles = _role_names(spec_or_roles)
    n = _cluster_size(spec_or_roles, cluster_size)
    if quorum_role not in roles:
        raise TopologyError(
            f"quorum role {quorum_role!r} not among roles {roles}"
        )
    other_roles = tuple(r for r in roles if r != quorum_role)
    racks = tuple(Rack(f"R{i}") for i in range(1, n + 1))
    hosts = []
    vms = []
    instances = []
    for i in range(1, n + 1):
        host = Host(f"DBH{i}", f"R{i}")
        hosts.append(host)
        vm = Vm(f"{quorum_role}{i}", host.name)
        vms.append(vm)
        instances.append(RoleInstance(quorum_role, i, vm.name))
    for i in range(1, n + 1):
        host = Host(f"H{i}", "R1")
        hosts.append(host)
        vm = Vm(f"GCA{i}", host.name)
        vms.append(vm)
        instances.extend(
            RoleInstance(role, i, vm.name) for role in other_roles
        )
    return DeploymentTopology(
        "DatabaseSpread", racks, tuple(hosts), tuple(vms), tuple(instances)
    )


def check_anti_affinity(
    topology: DeploymentTopology, role: str, level: str
) -> bool:
    """Whether a role's instances occupy distinct elements at ``level``.

    ``level`` is ``"rack"``, ``"host"``, or ``"vm"``.  Anti-affinity at
    the rack level is what makes the Large topology's quorum rack-failure
    tolerant.
    """
    index = {"rack": 0, "host": 1, "vm": 2}
    try:
        position = index[level]
    except KeyError:
        raise TopologyError(
            f"level must be one of {sorted(index)}, got {level!r}"
        ) from None
    elements = [
        topology.support_chain(instance)[position]
        for instance in topology.instances_of(role)
    ]
    return len(set(elements)) == len(elements)


def hardware_footprint(topology: DeploymentTopology) -> tuple[int, int, int]:
    """``(racks, hosts, vms)`` — the cost drivers of a layout."""
    return len(topology.racks), len(topology.hosts), len(topology.vms)
